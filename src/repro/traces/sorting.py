"""Instrumented sorting kernels (paper Dataset 1).

The paper traces GNU sort — libstdc++ ``std::sort`` [53], i.e.
**introsort**: median-of-3 quicksort with a depth limit falling back to
heapsort, finished by a single insertion-sort pass over nearly-sorted
data. We implement that algorithm faithfully over
:class:`~repro.traces.instrument.LoggingArray` so every element
dereference lands in the trace, plus plain quicksort and mergesort
(the paper's parameter sweep also varies the trace source).

The paper sorts 500,000 random integers per trace; a pure-Python
instrumented run of that size is impractical, so the default ``n`` here
is smaller and experiment configs document the scaling (EXPERIMENTS.md).
"""

from __future__ import annotations

import math

import numpy as np

from .base import Trace, Workload, register_workload
from .instrument import DEFAULT_ITEMSIZE, DEFAULT_PAGE_BYTES, AccessLogger, LoggingArray

__all__ = [
    "introsort",
    "quicksort",
    "mergesort",
    "heapsort_range",
    "introsort_trace",
    "quicksort_trace",
    "mergesort_trace",
    "sort_workload",
    "quicksort_workload",
    "mergesort_workload",
]

#: libstdc++'s _S_threshold: partitions at most this long are left for
#: the final insertion sort.
INSERTION_THRESHOLD = 16


# -- kernels ------------------------------------------------------------------


def _insertion_sort(a: LoggingArray, lo: int, hi: int) -> None:
    """Classic insertion sort of ``a[lo:hi]``."""
    for i in range(lo + 1, hi):
        value = a[i]
        j = i - 1
        while j >= lo and a[j] > value:
            a[j + 1] = a[j]
            j -= 1
        a[j + 1] = value


def _sift_down(a: LoggingArray, lo: int, start: int, end: int) -> None:
    """Restore the max-heap property for the subtree rooted at ``start``.

    Heap indices are relative to ``lo``; ``end`` is one past the last
    heap element (absolute).
    """
    root = start
    n = end - lo
    while True:
        child = 2 * (root - lo) + 1  # left child, heap-relative
        if child >= n:
            return
        child_abs = lo + child
        if child + 1 < n and a[child_abs] < a[child_abs + 1]:
            child_abs += 1
        if a[root] < a[child_abs]:
            a.swap(root, child_abs)
            root = child_abs
        else:
            return


def heapsort_range(a: LoggingArray, lo: int, hi: int) -> None:
    """In-place heapsort of ``a[lo:hi]`` (introsort's fallback)."""
    n = hi - lo
    for start in range(lo + n // 2 - 1, lo - 1, -1):
        _sift_down(a, lo, start, hi)
    for end in range(hi - 1, lo, -1):
        a.swap(lo, end)
        _sift_down(a, lo, lo, end)


def _median_of_three(a: LoggingArray, lo: int, mid: int, hi: int) -> int:
    """Index of the median of ``a[lo]``, ``a[mid]``, ``a[hi]``."""
    x, y, z = a[lo], a[mid], a[hi]
    if x < y:
        if y < z:
            return mid
        return hi if x < z else lo
    if x < z:
        return lo
    return hi if y < z else mid


def _partition(a: LoggingArray, lo: int, hi: int, pivot) -> int:
    """Hoare partition of ``a[lo:hi]`` around ``pivot`` (libstdc++ style)."""
    i, j = lo, hi
    while True:
        while a[i] < pivot:
            i += 1
        j -= 1
        while pivot < a[j]:
            j -= 1
        if i >= j:
            return i
        a.swap(i, j)
        i += 1


def _introsort_loop(a: LoggingArray, lo: int, hi: int, depth_limit: int) -> None:
    while hi - lo > INSERTION_THRESHOLD:
        if depth_limit == 0:
            heapsort_range(a, lo, hi)
            return
        depth_limit -= 1
        mid = _median_of_three(a, lo, lo + (hi - lo) // 2, hi - 1)
        pivot = a[mid]
        cut = _partition(a, lo, hi, pivot)
        _introsort_loop(a, cut, hi, depth_limit)
        hi = cut  # tail-recurse on the left part, as libstdc++ does


def introsort(a: LoggingArray) -> None:
    """libstdc++ ``std::sort``: introsort + final insertion sort."""
    n = len(a)
    if n <= 1:
        return
    depth_limit = 2 * int(math.log2(n))
    _introsort_loop(a, 0, n, depth_limit)
    # libstdc++ finishes with one insertion-sort pass over the whole
    # nearly-sorted array (__final_insertion_sort).
    _insertion_sort(a, 0, n)


def quicksort(a: LoggingArray, lo: int = 0, hi: int | None = None) -> None:
    """Plain median-of-3 quicksort (no depth-limit fallback)."""
    if hi is None:
        hi = len(a)
    while hi - lo > 1:
        mid = _median_of_three(a, lo, lo + (hi - lo) // 2, hi - 1)
        pivot = a[mid]
        cut = _partition(a, lo, hi, pivot)
        if cut - lo < hi - cut:
            quicksort(a, lo, cut)
            lo = cut
        else:
            quicksort(a, cut, hi)
            hi = cut


def mergesort(a: LoggingArray, buffer: LoggingArray) -> None:
    """Top-down stable mergesort using an equal-size temp ``buffer``."""
    _mergesort_range(a, buffer, 0, len(a))


def _mergesort_range(a: LoggingArray, buf: LoggingArray, lo: int, hi: int) -> None:
    if hi - lo <= INSERTION_THRESHOLD:
        _insertion_sort(a, lo, hi)
        return
    mid = (lo + hi) // 2
    _mergesort_range(a, buf, lo, mid)
    _mergesort_range(a, buf, mid, hi)
    for idx in range(lo, hi):
        buf[idx] = a[idx]
    i, j = lo, mid
    for idx in range(lo, hi):
        if i < mid and (j >= hi or buf[i] <= buf[j]):
            a[idx] = buf[i]
            i += 1
        else:
            a[idx] = buf[j]
            j += 1


# -- trace generation --------------------------------------------------------


def _sorted_check(a: LoggingArray) -> None:
    data = a.peek()
    if any(data[i] > data[i + 1] for i in range(len(data) - 1)):
        raise AssertionError("instrumented sort produced unsorted output")


def _sort_trace(
    kind: str,
    n: int,
    rng: np.random.Generator,
    page_bytes: int,
    itemsize: int,
) -> Trace:
    logger = AccessLogger(page_bytes=page_bytes)
    values = rng.integers(0, 2**31, size=n)
    a = logger.array(values, itemsize=itemsize, name="input")
    if kind == "introsort":
        introsort(a)
    elif kind == "quicksort":
        quicksort(a)
    elif kind == "mergesort":
        buf = logger.array(n, itemsize=itemsize, name="buffer")
        mergesort(a, buf)
    else:
        raise ValueError(f"unknown sort kind {kind!r}")
    logger.pause()
    _sorted_check(a)
    return logger.to_trace(source=f"{kind}", n=n, itemsize=itemsize)


def introsort_trace(
    n: int,
    seed: int | np.random.Generator = 0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
) -> Trace:
    """Page trace of GNU-sort-style introsort on ``n`` random integers."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return _sort_trace("introsort", n, rng, page_bytes, itemsize)


def quicksort_trace(
    n: int,
    seed: int | np.random.Generator = 0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
) -> Trace:
    """Page trace of plain quicksort on ``n`` random integers."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return _sort_trace("quicksort", n, rng, page_bytes, itemsize)


def mergesort_trace(
    n: int,
    seed: int | np.random.Generator = 0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
) -> Trace:
    """Page trace of buffered mergesort on ``n`` random integers."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return _sort_trace("mergesort", n, rng, page_bytes, itemsize)


def _resolve_sizes(threads: int, n: int, work_factors) -> list[int]:
    """Per-thread problem sizes, optionally skewed (paper: 'distribution
    of work across the cores')."""
    if work_factors is None:
        return [n] * threads
    factors = list(work_factors)
    if len(factors) < threads:
        raise ValueError(
            f"work_factors has {len(factors)} entries for {threads} threads"
        )
    return [max(2, int(round(n * f))) for f in factors[:threads]]


def _sort_workload(
    kind: str,
    threads: int,
    seed: int,
    n: int,
    page_bytes: int,
    itemsize: int,
    coalesce: bool,
    work_factors,
) -> Workload:
    from .base import spawn_thread_seeds

    rngs = spawn_thread_seeds(seed, threads)
    sizes = _resolve_sizes(threads, n, work_factors)
    traces = [
        _sort_trace(kind, sizes[i], rngs[i], page_bytes, itemsize)
        for i in range(threads)
    ]
    return Workload(traces, name=f"{kind}-n{n}", coalesce=coalesce)


@register_workload("sort")
def sort_workload(
    threads: int,
    seed: int = 0,
    n: int = 2000,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    coalesce: bool = False,
    work_factors=None,
) -> Workload:
    """GNU-sort workload: ``threads`` independent introsort traces."""
    return _sort_workload(
        "introsort", threads, seed, n, page_bytes, itemsize, coalesce, work_factors
    )


@register_workload("quicksort")
def quicksort_workload(
    threads: int,
    seed: int = 0,
    n: int = 2000,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    coalesce: bool = False,
    work_factors=None,
) -> Workload:
    """Plain-quicksort workload."""
    return _sort_workload(
        "quicksort", threads, seed, n, page_bytes, itemsize, coalesce, work_factors
    )


@register_workload("mergesort")
def mergesort_workload(
    threads: int,
    seed: int = 0,
    n: int = 2000,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    coalesce: bool = False,
    work_factors=None,
) -> Workload:
    """Buffered-mergesort workload."""
    return _sort_workload(
        "mergesort", threads, seed, n, page_bytes, itemsize, coalesce, work_factors
    )
