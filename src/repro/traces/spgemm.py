"""Instrumented sparse matrix-matrix multiplication (paper Dataset 2).

The paper's SpGEMM traces come from the TACO-generated CSR x CSR kernel
[23, 40] with its arrays replaced by logging array objects. TACO emits
Gustavson's row-by-row algorithm with a dense workspace accumulator;
we implement exactly that shape over
:class:`~repro.traces.instrument.LoggingArray`:

* ``A.pos / A.crd / A.vals`` and ``B.pos / B.crd / B.vals`` — the CSR
  ("compressed, compressed") level arrays, in TACO naming;
* a dense value workspace plus an occupancy list per output row;
* ``C.pos / C.crd / C.vals`` output arrays.

Matrices are uniformly random with the paper's 600 x 600, ~10% density
shape (default sizes scaled down for pure-Python tractability; see
EXPERIMENTS.md). Results are verified against ``scipy.sparse`` with
logging paused.
"""

from __future__ import annotations

import numpy as np

from .base import Trace, Workload, register_workload, spawn_thread_seeds
from .instrument import DEFAULT_ITEMSIZE, DEFAULT_PAGE_BYTES, AccessLogger, LoggingArray

__all__ = [
    "random_csr",
    "spgemm_gustavson",
    "spgemm_trace",
    "spgemm_workload",
]


def random_csr(
    n: int,
    density: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random n x n CSR matrix where each entry exists with prob ``density``.

    Returns ``(indptr, indices, data)`` with sorted column indices per
    row — the layout TACO's CSR level format stores.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    counts = rng.binomial(n, density, size=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int64)
    for i in range(n):
        cols = rng.choice(n, size=counts[i], replace=False)
        cols.sort()
        indices[indptr[i] : indptr[i + 1]] = cols
    data = rng.uniform(0.5, 1.5, size=indptr[-1])
    return indptr, indices, data


def spgemm_gustavson(
    logger: AccessLogger,
    a_pos: LoggingArray,
    a_crd: LoggingArray,
    a_vals: LoggingArray,
    b_pos: LoggingArray,
    b_crd: LoggingArray,
    b_vals: LoggingArray,
    n: int,
    c_capacity: int,
) -> tuple[LoggingArray, LoggingArray, LoggingArray]:
    """TACO-style Gustavson SpGEMM: C = A * B over logging arrays.

    Every element dereference of the seven arrays (two CSR inputs, the
    dense workspace, and the growing CSR output) is logged.
    """
    workspace = logger.array(n, name="workspace")
    occupied = logger.array([0] * n, name="occupied")
    row_list = logger.array(n, name="row_list")
    c_pos = logger.array([0] * (n + 1), name="C.pos")
    c_crd = logger.array(0, name="C.crd", capacity=c_capacity)
    c_vals = logger.array(0, name="C.vals", capacity=c_capacity)

    for i in range(n):
        nnz_row = 0
        a_lo, a_hi = a_pos[i], a_pos[i + 1]
        for kk in range(a_lo, a_hi):
            k = a_crd[kk]
            a_ik = a_vals[kk]
            b_lo, b_hi = b_pos[k], b_pos[k + 1]
            for jj in range(b_lo, b_hi):
                j = b_crd[jj]
                if occupied[j]:
                    workspace[j] = workspace[j] + a_ik * b_vals[jj]
                else:
                    occupied[j] = 1
                    workspace[j] = a_ik * b_vals[jj]
                    row_list[nnz_row] = j
                    nnz_row += 1
        # TACO sorts the per-row coordinate list before appending (the
        # output CSR level is ordered); sort the occupancy list
        # uninstrumented, then emit with instrumented accesses.
        logger.pause()
        cols = sorted(row_list.peek()[:nnz_row])
        logger.resume()
        for j in cols:
            c_crd.append(j)
            c_vals.append(workspace[j])
            occupied[j] = 0
        c_pos[i + 1] = c_pos[i] + nnz_row
    return c_pos, c_crd, c_vals


def _verify_against_scipy(
    a_np: tuple[np.ndarray, np.ndarray, np.ndarray],
    b_np: tuple[np.ndarray, np.ndarray, np.ndarray],
    c_pos: LoggingArray,
    c_crd: LoggingArray,
    c_vals: LoggingArray,
    n: int,
) -> None:
    from scipy import sparse

    a = sparse.csr_matrix((a_np[2], a_np[1], a_np[0]), shape=(n, n))
    b = sparse.csr_matrix((b_np[2], b_np[1], b_np[0]), shape=(n, n))
    expected = (a @ b).sorted_indices()
    got = sparse.csr_matrix(
        (
            np.asarray(c_vals.peek(), dtype=np.float64),
            np.asarray(c_crd.peek(), dtype=np.int64),
            np.asarray(c_pos.peek(), dtype=np.int64),
        ),
        shape=(n, n),
    )
    if not np.allclose(got.toarray(), expected.toarray(), atol=1e-9):
        raise AssertionError("instrumented SpGEMM disagrees with scipy")


def spgemm_trace(
    n: int = 150,
    density: float = 0.1,
    seed: int | np.random.Generator = 0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    verify: bool = True,
) -> Trace:
    """Page trace of one n x n, ``density``-dense SpGEMM instance."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    logger = AccessLogger(page_bytes=page_bytes)
    a_np = random_csr(n, density, rng)
    b_np = random_csr(n, density, rng)
    arrays = {}
    for name, (indptr, indices, data) in (("A", a_np), ("B", b_np)):
        arrays[name] = (
            logger.array(indptr, itemsize=itemsize, name=f"{name}.pos"),
            logger.array(indices, itemsize=itemsize, name=f"{name}.crd"),
            logger.array(data, itemsize=itemsize, name=f"{name}.vals"),
        )
    c_pos, c_crd, c_vals = spgemm_gustavson(
        logger, *arrays["A"], *arrays["B"], n=n, c_capacity=n * n
    )
    logger.pause()
    if verify:
        _verify_against_scipy(a_np, b_np, c_pos, c_crd, c_vals, n)
    return logger.to_trace(
        source="spgemm",
        n=n,
        density=density,
        nnz_a=len(a_np[1]),
        nnz_b=len(b_np[1]),
        nnz_c=len(c_crd),
        itemsize=itemsize,
    )


@register_workload("spgemm")
def spgemm_workload(
    threads: int,
    seed: int = 0,
    n: int = 150,
    density: float = 0.1,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    coalesce: bool = False,
    verify: bool = False,
    work_factors=None,
) -> Workload:
    """SpGEMM workload: ``threads`` independent random instances.

    ``work_factors`` scales per-thread matrix sizes for asymmetric-work
    experiments (paper: "the distribution of work across the cores").
    """
    rngs = spawn_thread_seeds(seed, threads)
    if work_factors is None:
        sizes = [n] * threads
    else:
        factors = list(work_factors)
        if len(factors) < threads:
            raise ValueError(
                f"work_factors has {len(factors)} entries for {threads} threads"
            )
        sizes = [max(4, int(round(n * f))) for f in factors[:threads]]
    traces = [
        spgemm_trace(
            n=sizes[i],
            density=density,
            seed=rngs[i],
            page_bytes=page_bytes,
            itemsize=itemsize,
            verify=verify,
        )
        for i in range(threads)
    ]
    return Workload(traces, name=f"spgemm-n{n}-d{density}", coalesce=coalesce)
