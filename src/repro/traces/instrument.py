"""Memory-access instrumentation (paper section 3.1/3.2).

The paper obtains traces by "overloading C++ operators ... to log memory
accesses": a logging iterator handed to GNU sort, and logging array-like
objects substituted into the TACO SpGEMM kernel. This module is the
Python equivalent: kernels are written against :class:`LoggingArray`
objects allocated from an :class:`AccessLogger`, which records the byte
address of every element dereference. The paper's preprocessing step —
"each array dereference in the annotated code is mapped to its page
reference" — is :meth:`AccessLogger.to_trace`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..obs.log import get_logger
from .base import Trace

log = get_logger("traces.instrument")

__all__ = [
    "AccessLogger",
    "LoggingArray",
    "DEFAULT_PAGE_BYTES",
    "DEFAULT_ITEMSIZE",
]

#: 4 KiB pages, the conventional OS page size (the granularity at which
#: KNL's cache-mode MCDRAM is direct-mapped is a hardware detail the
#: model abstracts away; any fixed block size B fits the model).
DEFAULT_PAGE_BYTES = 4096

#: 8-byte elements (int64 / double), so 512 elements per page.
DEFAULT_ITEMSIZE = 8


class AccessLogger:
    """Bump allocator plus append-only address log.

    Allocations are page-aligned so that distinct structures never share
    a page (matching how large allocations behave under a real
    allocator, and keeping traces interpretable).
    """

    def __init__(self, page_bytes: int = DEFAULT_PAGE_BYTES) -> None:
        if page_bytes < 1:
            raise ValueError(f"page_bytes must be >= 1, got {page_bytes}")
        self.page_bytes = page_bytes
        self.addresses: list[int] = []
        self._brk = 0
        self.enabled = True

    # -- allocation ----------------------------------------------------------
    def allocate_bytes(self, n_bytes: int) -> int:
        """Reserve ``n_bytes`` page-aligned; return the base address."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        base = self._brk
        pages = -(-max(n_bytes, 1) // self.page_bytes)  # ceil, min one page
        self._brk += pages * self.page_bytes
        return base

    def array(
        self,
        data: Sequence[int | float] | np.ndarray | int,
        itemsize: int = DEFAULT_ITEMSIZE,
        name: str = "",
        capacity: int | None = None,
    ) -> "LoggingArray":
        """Allocate a :class:`LoggingArray` over ``data``.

        ``data`` may be an int (zero-initialized length) or any sequence.
        ``capacity`` reserves room (in elements) for :meth:`LoggingArray.append`.
        """
        if isinstance(data, int):
            values = [0] * data
        elif isinstance(data, np.ndarray):
            values = data.tolist()
        else:
            values = list(data)
        n_reserve = max(len(values), capacity or 0)
        base = self.allocate_bytes(n_reserve * itemsize)
        pages = -(-max(n_reserve * itemsize, 1) // self.page_bytes)
        return LoggingArray(
            self, base, values, itemsize, name=name,
            reserved_bytes=pages * self.page_bytes,
        )

    # -- logging ---------------------------------------------------------
    def record(self, address: int) -> None:
        """Log one byte-address dereference."""
        if self.enabled:
            self.addresses.append(address)

    def pause(self) -> None:
        """Stop logging (e.g. around verification code)."""
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    def __len__(self) -> int:
        return len(self.addresses)

    # -- preprocessing -----------------------------------------------------
    def to_trace(self, source: str = "instrumented", **params) -> Trace:
        """Map the address log to a page-reference trace."""
        addresses = np.asarray(self.addresses, dtype=np.int64)
        pages = addresses // self.page_bytes
        log.debug(
            "preprocess %s: %d raw accesses -> %d page refs (%d distinct pages)",
            source, len(self), len(pages), len(np.unique(pages)),
        )
        return Trace(
            pages,
            source=source,
            params={"page_bytes": self.page_bytes, "raw_accesses": len(self), **params},
        )


class LoggingArray:
    """Array-like object that logs the address of every dereference.

    The Python analogue of the paper's overloaded-operator C++ arrays:
    ``a[i]`` and ``a[i] = x`` both log ``base + i * itemsize``. Slicing
    is intentionally unsupported — kernels must express element accesses
    explicitly so that every dereference is observed.
    """

    __slots__ = ("_logger", "base", "_data", "itemsize", "name", "reserved_bytes")

    def __init__(
        self,
        logger: AccessLogger,
        base: int,
        data: list,
        itemsize: int = DEFAULT_ITEMSIZE,
        name: str = "",
        reserved_bytes: int | None = None,
    ) -> None:
        self._logger = logger
        self.base = base
        self._data = data
        self.itemsize = itemsize
        self.name = name
        if reserved_bytes is None:
            page = logger.page_bytes
            reserved_bytes = (-(-max(len(data) * itemsize, 1) // page)) * page
        self.reserved_bytes = reserved_bytes

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index: int):
        if index < 0:
            index += len(self._data)
        value = self._data[index]  # raises IndexError before logging junk
        self._logger.record(self.base + index * self.itemsize)
        return value

    def __setitem__(self, index: int, value) -> None:
        if index < 0:
            index += len(self._data)
        self._data[index] = value
        self._logger.record(self.base + index * self.itemsize)

    def __iter__(self) -> Iterator:
        for i in range(len(self._data)):
            yield self[i]

    def append(self, value) -> None:
        """Append within the allocation's page headroom.

        Growth must stay within the bytes reserved at allocation time
        (``capacity`` plus page-rounding); exceeding it is an error —
        kernels should size arrays up front, as the C++ originals do.
        """
        index = len(self._data)
        if (index + 1) * self.itemsize > self.reserved_bytes:
            raise ValueError(
                f"append would overflow the reserved allocation of {self.name or 'array'}; "
                "pass capacity= when allocating"
            )
        self._data.append(value)
        self._logger.record(self.base + index * self.itemsize)

    def swap(self, i: int, j: int) -> None:
        """Exchange two elements (logs two reads and two writes)."""
        ti, tj = self[i], self[j]
        self[i], self[j] = tj, ti

    def peek(self) -> list:
        """Uninstrumented snapshot of the contents (for verification)."""
        return list(self._data)

    def __repr__(self) -> str:
        return (
            f"LoggingArray(name={self.name!r}, len={len(self._data)}, "
            f"base={self.base:#x})"
        )
