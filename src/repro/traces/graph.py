"""Instrumented graph traversal (BFS) trace generator.

The paper's related work (section 1.3) highlights graph algorithms as a
prime HBM workload: Slota and Rajamanickam [55] report 2-5x speedups
for graph instances *larger than HBM* — exactly the capacity-pressure
regime where far-channel arbitration matters. BFS is the canonical
irregular-access kernel: frontier expansion reads the CSR adjacency
arrays in data-dependent order, producing long reuse distances that
neither FIFO nor LRU can exploit.

The kernel runs over :class:`~repro.traces.instrument.LoggingArray`
structures (CSR ``indptr``/``indices``, a ``visited`` bitmap, and the
frontier queue) and is verified against ``networkx`` reachability.
"""

from __future__ import annotations

import numpy as np

from .base import Trace, Workload, register_workload, spawn_thread_seeds
from .instrument import DEFAULT_ITEMSIZE, DEFAULT_PAGE_BYTES, AccessLogger

__all__ = ["random_graph_csr", "bfs_instrumented", "bfs_trace", "bfs_workload"]


def random_graph_csr(
    vertices: int,
    avg_degree: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Random directed graph in CSR form (``indptr``, ``indices``).

    Each vertex gets a Poisson(avg_degree) number of uniform random
    out-neighbours (self-loops allowed, duplicates removed).
    """
    if vertices < 1:
        raise ValueError(f"vertices must be >= 1, got {vertices}")
    if avg_degree < 0:
        raise ValueError(f"avg_degree must be >= 0, got {avg_degree}")
    out_lists = []
    for _ in range(vertices):
        degree = rng.poisson(avg_degree)
        if degree:
            neighbours = np.unique(rng.integers(0, vertices, size=degree))
        else:
            neighbours = np.empty(0, dtype=np.int64)
        out_lists.append(neighbours)
    indptr = np.zeros(vertices + 1, dtype=np.int64)
    np.cumsum([len(lst) for lst in out_lists], out=indptr[1:])
    indices = (
        np.concatenate(out_lists).astype(np.int64)
        if indptr[-1]
        else np.empty(0, dtype=np.int64)
    )
    return indptr, indices


def bfs_instrumented(
    logger: AccessLogger,
    indptr_np: np.ndarray,
    indices_np: np.ndarray,
    itemsize: int = DEFAULT_ITEMSIZE,
) -> list[int]:
    """Multi-source BFS over logging arrays; returns discovery order.

    Restarts from the smallest unvisited vertex until every vertex is
    reached, so the trace covers the whole structure even when the
    random graph is disconnected.
    """
    n = len(indptr_np) - 1
    indptr = logger.array(indptr_np, itemsize=itemsize, name="G.indptr")
    indices = logger.array(indices_np, itemsize=itemsize, name="G.indices")
    visited = logger.array([0] * n, itemsize=itemsize, name="visited")
    queue = logger.array(n, itemsize=itemsize, name="frontier")
    order: list[int] = []
    for source in range(n):
        if visited[source]:
            continue
        visited[source] = 1
        head, tail = 0, 0
        queue[tail] = source
        tail += 1
        while head < tail:
            vertex = queue[head]
            head += 1
            order.append(vertex)
            lo, hi = indptr[vertex], indptr[vertex + 1]
            for e in range(lo, hi):
                neighbour = indices[e]
                if not visited[neighbour]:
                    visited[neighbour] = 1
                    queue[tail] = neighbour
                    tail += 1
    return order


def _verify_with_networkx(
    indptr: np.ndarray, indices: np.ndarray, order: list[int]
) -> None:
    import networkx as nx

    n = len(indptr) - 1
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    for v in range(n):
        for e in range(indptr[v], indptr[v + 1]):
            graph.add_edge(v, int(indices[e]))
    # multi-source BFS visits every vertex exactly once
    if sorted(order) != list(range(n)):
        raise AssertionError("instrumented BFS did not visit every vertex once")
    # each BFS tree's vertices must be reachable from its source
    seen: set[int] = set()
    source = None
    for vertex in order:
        if vertex not in seen and (source is None or vertex not in reachable):
            source = vertex
            reachable = set(nx.descendants(graph, source)) | {source}
        if vertex not in reachable:
            raise AssertionError(
                f"BFS visited {vertex} outside the component of {source}"
            )
        seen.add(vertex)


def bfs_trace(
    vertices: int = 600,
    avg_degree: float = 8.0,
    seed: int | np.random.Generator = 0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    verify: bool = True,
) -> Trace:
    """Page trace of one multi-source BFS over a random graph."""
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    logger = AccessLogger(page_bytes=page_bytes)
    indptr, indices = random_graph_csr(vertices, avg_degree, rng)
    order = bfs_instrumented(logger, indptr, indices, itemsize=itemsize)
    logger.pause()
    if verify:
        _verify_with_networkx(indptr, indices, order)
    return logger.to_trace(
        source="bfs",
        vertices=vertices,
        avg_degree=avg_degree,
        edges=int(indptr[-1]),
        itemsize=itemsize,
    )


@register_workload("bfs")
def bfs_workload(
    threads: int,
    seed: int = 0,
    vertices: int = 600,
    avg_degree: float = 8.0,
    page_bytes: int = DEFAULT_PAGE_BYTES,
    itemsize: int = DEFAULT_ITEMSIZE,
    coalesce: bool = False,
    verify: bool = False,
) -> Workload:
    """BFS workload: ``threads`` independent random graph traversals."""
    rngs = spawn_thread_seeds(seed, threads)
    traces = [
        bfs_trace(
            vertices=vertices,
            avg_degree=avg_degree,
            seed=rngs[i],
            page_bytes=page_bytes,
            itemsize=itemsize,
            verify=verify,
        )
        for i in range(threads)
    ]
    return Workload(traces, name=f"bfs-v{vertices}-d{avg_degree}", coalesce=coalesce)
