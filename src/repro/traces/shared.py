"""Non-disjoint workloads: cores that share pages (paper section 6.1).

The model — and all of the paper's theory — assumes Property 1: the
per-core page sets are mutually exclusive. The conclusion names the
relaxation as future work: "Theory on non-disjoint access sequences is
a promising avenue." The simulator already handles sharing (a fetch of
an already-resident page is a no-op and wakes every waiting core), so
this module provides the workloads to explore it empirically:

* :func:`shared_segment_trace` — a thread mixes references to its
  private pages with references into a common read-shared segment
  (the shape of scientific codes sharing a read-only table or matrix);
* :func:`shared_workload` — ``threads`` such traces over one common
  segment, built with ``Workload(namespace=False)``.

The interesting empirical questions mirror the disjoint story: sharing
*reduces* total far-channel traffic (a shared fetch serves everyone),
and a high-priority thread now inadvertently prefetches for low-priority
ones — softening Priority's starvation.
"""

from __future__ import annotations

import numpy as np

from .base import Trace, Workload, register_workload, spawn_thread_seeds

__all__ = ["shared_segment_trace", "shared_workload"]

#: page-id block where the common segment lives; private blocks follow
_SHARED_BASE = 0
_PRIVATE_BASE = 1_000_000


def shared_segment_trace(
    length: int,
    private_pages: int,
    shared_pages: int,
    shared_fraction: float,
    rng: np.random.Generator,
    thread: int,
) -> Trace:
    """One thread's mixed private/shared reference stream.

    Each reference is shared with probability ``shared_fraction``
    (uniform over the common segment) and otherwise private (uniform
    over the thread's own block).
    """
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError(f"shared_fraction must be in [0, 1], got {shared_fraction}")
    if private_pages < 1 or shared_pages < 1:
        raise ValueError("private_pages and shared_pages must be >= 1")
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    is_shared = rng.random(length) < shared_fraction
    shared_refs = _SHARED_BASE + rng.integers(0, shared_pages, size=length)
    private_refs = (
        _PRIVATE_BASE
        + thread * private_pages
        + rng.integers(0, private_pages, size=length)
    )
    pages = np.where(is_shared, shared_refs, private_refs)
    return Trace(
        pages,
        source="shared_segment",
        params={
            "shared_fraction": shared_fraction,
            "private_pages": private_pages,
            "shared_pages": shared_pages,
        },
    )


@register_workload("shared")
def shared_workload(
    threads: int,
    seed: int = 0,
    length: int = 5_000,
    private_pages: int = 64,
    shared_pages: int = 64,
    shared_fraction: float = 0.5,
) -> Workload:
    """Threads mixing private streams with a common shared segment.

    Page ids are global by construction (``namespace=False``): the
    shared segment occupies one id block that every trace references.
    """
    rngs = spawn_thread_seeds(seed, threads)
    traces = [
        shared_segment_trace(
            length, private_pages, shared_pages, shared_fraction, rngs[i], i
        )
        for i in range(threads)
    ]
    return Workload(
        traces,
        name=f"shared-f{shared_fraction}-u{shared_pages}",
        namespace=False,
    )
