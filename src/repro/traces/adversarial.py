"""Adversarial traces: workloads designed to be bad for FIFO.

Paper Dataset 3 (section 3.2): "FIFO performs asymptotically poorly when
run on a long sequence of unique pages, repeated many times. We generate
the sequence 1, 2, 3 ... 256 and repeat it 100 times", with HBM sized to
hold only a quarter of the unique pages across all threads (Figure 3).

This is also the engine of the Theorem 2 lower bound (Das et al. [24]):
with p cores cycling over disjoint page sets that jointly exceed HBM,
FCFS shares the far channel round-robin so *every* reference misses,
while Priority lets the top threads keep their working sets resident
and finish; the makespan gap grows linearly with p.
"""

from __future__ import annotations

import numpy as np

from .base import Trace, Workload, register_workload

__all__ = [
    "cyclic_trace",
    "adversarial_cycle_workload",
    "fifo_adversarial_hbm_slots",
    "theorem2_workload",
]


def cyclic_trace(pages: int, repeats: int, offset: int = 0) -> Trace:
    """The sequence ``offset .. offset+pages-1`` repeated ``repeats`` times."""
    if pages < 1 or repeats < 1:
        raise ValueError(f"pages and repeats must be >= 1, got {pages}, {repeats}")
    one_pass = np.arange(offset, offset + pages, dtype=np.int64)
    return Trace(
        np.tile(one_pass, repeats),
        source="adversarial_cycle",
        params={"pages": pages, "repeats": repeats},
    )


@register_workload("adversarial_cycle")
def adversarial_cycle_workload(
    threads: int,
    seed: int = 0,  # noqa: ARG001 - deterministic workload, kept for API symmetry
    pages: int = 256,
    repeats: int = 100,
) -> Workload:
    """Dataset 3: every thread cycles over its own ``pages`` unique pages.

    Page-disjointness across threads comes from :class:`Workload`'s
    renumbering, so all threads can use the same local sequence.
    """
    traces = [cyclic_trace(pages, repeats) for _ in range(threads)]
    return Workload(traces, name=f"cycle-{pages}x{repeats}")


def fifo_adversarial_hbm_slots(
    threads: int, pages: int = 256, fraction: float = 0.25
) -> int:
    """HBM size for the Figure 3 setup: ``fraction`` of all unique pages.

    The paper sets k "to have enough memory to fit only 1/4 of all the
    unique pages across all the threads".
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    return max(1, int(threads * pages * fraction))


def theorem2_workload(
    threads: int,
    pages_per_thread: int,
    repeats: int,
) -> Workload:
    """The Theorem 2 family: p disjoint cyclic streams.

    Identical in structure to Dataset 3 but parameterized for the
    theory-validation harness (:mod:`repro.theory.adversary`), which
    scales ``p`` while holding per-thread memory constant and checks
    that FCFS's makespan ratio to Priority grows linearly.
    """
    traces = [cyclic_trace(pages_per_thread, repeats) for _ in range(threads)]
    return Workload(traces, name=f"thm2-p{threads}-m{pages_per_thread}")
