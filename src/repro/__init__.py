"""repro — reproduction of "Automatic HBM Management: Models and Algorithms".

A tick-level simulator of the HBM+DRAM model (Das et al. [24], extended
to ``q`` far channels), the far-channel arbitration policies the paper
studies (FIFO, Priority, Dynamic Priority, Cycle Priority, ...), trace
generators from instrumented memory-bandwidth-bound kernels (GNU-sort
style introsort, TACO-style SpGEMM), a synthetic KNL machine model for
the section 5 validation experiments, and a harness that regenerates
every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import SimulationConfig, run_simulation, make_workload
>>> wl = make_workload("adversarial_cycle", threads=8, pages=64, repeats=4)
>>> fifo = run_simulation(wl.traces, hbm_slots=128, arbitration="fifo")
>>> prio = run_simulation(wl.traces, hbm_slots=128, arbitration="priority")
>>> fifo.makespan >= prio.makespan
True
"""

from .core import (
    ARBITRATION_POLICIES,
    REPLACEMENT_POLICIES,
    SimulationConfig,
    SimulationLimitError,
    SimulationResult,
    Simulator,
    ThreadStats,
    run_simulation,
)
from .traces import Trace, Workload, make_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ARBITRATION_POLICIES",
    "REPLACEMENT_POLICIES",
    "SimulationConfig",
    "Simulator",
    "SimulationLimitError",
    "SimulationResult",
    "ThreadStats",
    "run_simulation",
    "Trace",
    "Workload",
    "make_workload",
]
