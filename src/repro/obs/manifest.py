"""Run manifests: a JSON sidecar that makes every run reproducible.

A manifest records everything needed to re-run and audit one
``simulate()`` call: the full config, the workload identity (generator
spec when known, page attestation and shape always), which engine
actually executed, the ``ENGINE_SEMANTICS_VERSION`` the results are
valid under, host information, and a wall-time breakdown by phase.
``repro trace`` and ``simulate(..., manifest_path=...)`` write one next
to their outputs; the sweep harness stores the same payload inside each
result-cache entry so cached records stay auditable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

__all__ = ["MANIFEST_SCHEMA", "RunManifest", "host_info"]

#: bump when the manifest layout changes incompatibly
MANIFEST_SCHEMA = "repro.obs.manifest/v1"


def host_info() -> dict[str, Any]:
    """Facts about the executing host (best-effort, never raises)."""
    import numpy as np

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "hostname": platform.node(),
        "cpu_count": os.cpu_count(),
    }


def _workload_info(traces: Any) -> dict[str, Any]:
    """Identity/shape facts for a workload or raw trace list."""
    info: dict[str, Any] = {}
    attestation = getattr(traces, "attestation", None)
    if attestation is not None:  # a repro.traces.Workload
        info["name"] = getattr(traces, "name", None)
        info["threads"] = traces.num_threads
        info["total_references"] = traces.total_references
        info["unique_pages"] = traces.total_unique_pages
        info["attestation"] = {
            "disjoint": attestation.disjoint,
            "min_page": attestation.min_page,
            "max_page": attestation.max_page,
        }
    else:
        lengths = [len(t) for t in traces]
        info["threads"] = len(lengths)
        info["total_references"] = sum(lengths)
    return info


def _result_info(result: Any) -> dict[str, Any]:
    """Headline metrics from a SimulationResult (wall time excluded —
    it lives in the timings section)."""
    return {
        "makespan": result.makespan,
        "ticks": result.ticks,
        "total_requests": result.total_requests,
        "hits": result.hits,
        "fetches": result.fetches,
        "evictions": result.evictions,
        "mean_response": result.mean_response,
        "inconsistency": result.inconsistency,
        "max_response": result.max_response,
        "remap_count": result.remap_count,
        "ff_intervals": result.ff_intervals,
        "ff_elided_ticks": result.ff_elided_ticks,
        "ff_elided_fraction": result.ff_elided_fraction,
    }


@dataclasses.dataclass(frozen=True)
class RunManifest:
    """Frozen description of one completed (or described) run.

    ``execution`` carries fault-tolerance facts when the run happened
    inside a sweep campaign — most importantly ``attempt``, the 1-based
    attempt number that produced the result (anything above 1 means the
    job was retried after a worker failure or timeout).
    """

    schema: str
    created_at: str
    engine: str
    engine_semantics_version: int
    config: dict[str, Any]
    workload: dict[str, Any]
    host: dict[str, Any]
    timings: dict[str, float]
    result: dict[str, Any] | None = None
    spec: dict[str, Any] | None = None
    execution: dict[str, Any] | None = None

    @classmethod
    def build(
        cls,
        config: Any,
        engine: str,
        traces: Any = None,
        timings: Mapping[str, float] | None = None,
        result: Any = None,
        spec: Any = None,
        execution: Mapping[str, Any] | None = None,
    ) -> "RunManifest":
        """Assemble a manifest from live objects.

        Parameters
        ----------
        config:
            The :class:`~repro.core.SimulationConfig` (or a plain dict).
        engine:
            The engine that actually ran (``"reference"``/``"fast"``).
        traces:
            The workload / trace list, for identity facts (optional).
        timings:
            Phase name -> seconds (e.g. ``dispatch_s``, ``run_s``,
            ``total_s``).
        result:
            The finished :class:`~repro.core.metrics.SimulationResult`.
        spec:
            A :class:`~repro.analysis.sweep.WorkloadSpec` (or dict) when
            the workload came from a generator spec.
        execution:
            Fault-tolerance facts (e.g. ``{"attempt": 2}``) when the
            run happened inside a sweep campaign.
        """
        from ..core.engine import ENGINE_SEMANTICS_VERSION

        config_dict = config if isinstance(config, dict) else config.to_dict()
        spec_dict: dict[str, Any] | None
        if spec is None or isinstance(spec, dict):
            spec_dict = spec
        else:
            spec_dict = {
                "kind": spec.kind,
                "threads": spec.threads,
                "seed": spec.seed,
                "params": dict(spec.params),
            }
        return cls(
            schema=MANIFEST_SCHEMA,
            created_at=datetime.now(timezone.utc).isoformat(),
            engine=engine,
            engine_semantics_version=ENGINE_SEMANTICS_VERSION,
            config=config_dict,
            workload=_workload_info(traces) if traces is not None else {},
            host=host_info(),
            timings=dict(timings or {}),
            result=_result_info(result) if result is not None else None,
            spec=spec_dict,
            execution=dict(execution) if execution is not None else None,
        )

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, default=str)

    def write(self, path: str | os.PathLike) -> Path:
        """Write the manifest atomically; returns the final path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_text(self.to_json() + "\n", encoding="utf-8")
        os.replace(tmp, path)
        return path

    @classmethod
    def read(cls, path: str | os.PathLike) -> "RunManifest":
        """Load a manifest written by :meth:`write`."""
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})
