"""Timeline export: Chrome ``trace_event`` JSON, JSONL, ASCII.

The Chrome trace format (one JSON object with a ``traceEvents`` list)
is understood by Perfetto (https://ui.perfetto.dev) and Chrome's
``about:tracing``. One simulation tick maps to one microsecond of trace
time, so a 50k-tick run renders as a 50 ms timeline.

Layout of the exported trace:

* process 0 (``hbm-model``) — counter tracks (``ph: "C"``) for HBM
  occupancy, DRAM queue depth, ready/blocked core counts, and busy
  channels;
* process 1 (``cores``) — one thread row per simulated core with a
  duration slice (``ph: "X"``) for every DRAM stall, reconstructed
  exactly from the per-sample ``stall_age`` (starts are exact at any
  probe stride; a stall's end is resolved to the last sample at which
  it was still observed).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from .probe import ProbeSample, TimelineProbe

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "merge_chrome_traces",
    "write_timeline_jsonl",
    "ascii_timeline",
]

#: trace time per simulation tick, in microseconds (ts units)
TICK_US = 1

#: counter tracks exported from each sample, name -> attribute
_COUNTER_TRACKS = (
    ("HBM occupancy", "hbm_occupancy"),
    ("DRAM queue depth", "queue_depth"),
    ("ready cores", "ready_threads"),
    ("blocked cores", "blocked_threads"),
    ("channels busy", "channels_busy"),
)


def _samples_of(source: TimelineProbe | Sequence[ProbeSample]) -> list[ProbeSample]:
    if isinstance(source, TimelineProbe):
        return list(source.samples)
    return list(source)


def _stall_slices(samples: list[ProbeSample]) -> list[tuple[int, int, int]]:
    """Per-core stall intervals as (thread, start_tick, duration_ticks).

    ``stall_age`` gives each stall's exact start tick even under sparse
    sampling; two samples belong to the same stall iff they resolve to
    the same start. Duration extends to the last sample that still
    observed the stall (exact for stride 1).
    """
    slices: list[tuple[int, int, int]] = []
    open_stalls: dict[int, tuple[int, int]] = {}  # thread -> (start, last_seen)
    for sample in samples:
        ages = sample.stall_age
        for thread in range(len(ages)):
            age = int(ages[thread])
            if age > 0:
                start = sample.tick - age + 1
                prev = open_stalls.get(thread)
                if prev is not None and prev[0] != start:
                    slices.append((thread, prev[0], prev[1] - prev[0] + 1))
                    prev = None
                open_stalls[thread] = (start, sample.tick)
            else:
                prev = open_stalls.pop(thread, None)
                if prev is not None:
                    slices.append((thread, prev[0], prev[1] - prev[0] + 1))
    for thread, (start, last_seen) in sorted(open_stalls.items()):
        slices.append((thread, start, last_seen - start + 1))
    return slices


def chrome_trace(
    source: TimelineProbe | Sequence[ProbeSample],
    name: str = "hbm-repro run",
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build a Chrome ``trace_event`` document from probe samples."""
    samples = _samples_of(source)
    events: list[dict[str, Any]] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "hbm-model"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "cores"}},
    ]
    num_threads = len(samples[0].blocked) if samples else 0
    for thread in range(num_threads):
        events.append(
            {"ph": "M", "pid": 1, "tid": thread, "name": "thread_name",
             "args": {"name": f"core {thread}"}}
        )
    for sample in samples:
        ts = sample.tick * TICK_US
        for track, attr in _COUNTER_TRACKS:
            events.append(
                {"ph": "C", "pid": 0, "tid": 0, "ts": ts, "name": track,
                 "args": {"value": int(getattr(sample, attr))}}
            )
    for thread, start, duration in _stall_slices(samples):
        events.append(
            {"ph": "X", "pid": 1, "tid": thread, "ts": start * TICK_US,
             "dur": duration * TICK_US, "name": "DRAM stall",
             "cat": "stall", "args": {"ticks": duration}}
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": name, "samples": len(samples), **(metadata or {})},
    }


def write_chrome_trace(
    source: TimelineProbe | Sequence[ProbeSample],
    path: str | os.PathLike,
    name: str = "hbm-repro run",
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace(source, name=name, metadata=metadata)
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(document) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def _track_name(doc: dict[str, Any], trace_path: Path, explicit: str | None) -> str:
    """Display name for one merged input, in preference order: the
    caller's explicit name (the job tag), the sibling ``manifest.json``
    workload name, the trace's own ``otherData.source``, the directory."""
    if explicit:
        return explicit
    manifest = trace_path.parent / "manifest.json"
    if manifest.is_file():
        try:
            workload = json.loads(manifest.read_text(encoding="utf-8")).get(
                "workload", {}
            )
            if workload.get("name"):
                return str(workload["name"])
        except (OSError, ValueError):
            pass
    source = doc.get("otherData", {}).get("source")
    return str(source) if source else trace_path.parent.name


def merge_chrome_traces(
    inputs: Iterable[str | os.PathLike | tuple[str | os.PathLike, str | None]],
    path: str | os.PathLike,
    name: str = "hbm-repro merged traces",
) -> Path:
    """Combine per-job Chrome traces into one multi-track document.

    Each input trace keeps all of its events, but its pids are remapped
    into a disjoint range so Perfetto renders every job as its own
    process group, and the ``process_name`` metadata rows are prefixed
    with the job's track name (see :func:`_track_name`) so the tracks
    read ``<job tag>: hbm-model`` / ``<job tag>: cores``. Inputs may be
    plain paths or ``(path, track_name)`` pairs.
    """
    merged_events: list[dict[str, Any]] = []
    sources: list[dict[str, Any]] = []
    next_pid = 0
    for item in inputs:
        trace_path, explicit = (
            (Path(item[0]), item[1])
            if isinstance(item, tuple)
            else (Path(item), None)
        )
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        events = doc.get("traceEvents", [])
        track = _track_name(doc, trace_path, explicit)
        pid_map: dict[int, int] = {}
        for event in events:
            old_pid = int(event.get("pid", 0))
            if old_pid not in pid_map:
                pid_map[old_pid] = next_pid
                next_pid += 1
            event = dict(event, pid=pid_map[old_pid])
            if event.get("ph") == "M" and event.get("name") == "process_name":
                inner = dict(event.get("args", {}))
                inner["name"] = f"{track}: {inner.get('name', '?')}"
                event["args"] = inner
            merged_events.append(event)
        sources.append(
            {"track": track, "path": str(trace_path), "events": len(events)}
        )
    if not sources:
        raise ValueError("merge_chrome_traces needs at least one input trace")
    document = {
        "traceEvents": merged_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": name, "merged": sources},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(document) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def write_timeline_jsonl(
    source: TimelineProbe | Sequence[ProbeSample], path: str | os.PathLike
) -> Path:
    """One JSON object per sample, one per line (stream-friendly)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for sample in _samples_of(source):
            fh.write(json.dumps(sample.to_dict()) + "\n")
    return path


def ascii_timeline(
    source: TimelineProbe | Sequence[ProbeSample],
    width: int = 64,
    height: int = 12,
) -> str:
    """Terminal rendering of a run: sparkline digest plus a shared plot."""
    from ..analysis.asciiplot import line_plot, sparkline

    samples = _samples_of(source)
    if not samples:
        return "(no samples)"
    ticks = [s.tick for s in samples]
    series: dict[str, list[tuple[float, float]]] = {}
    lines = []
    for track, attr in _COUNTER_TRACKS:
        values: Iterable[int] = [int(getattr(s, attr)) for s in samples]
        values = list(values)
        series[track] = list(zip(map(float, ticks), map(float, values)))
        label = track.ljust(max(len(t) for t, _ in _COUNTER_TRACKS))
        lines.append(
            f"{label}  {sparkline(values, width=min(width, 48))}"
            f"  min={min(values)} max={max(values)}"
        )
    plot = line_plot(
        series,
        title=f"timeline ({len(samples)} samples, ticks {ticks[0]}..{ticks[-1]})",
        xlabel="tick",
        ylabel="count",
        width=width,
        height=height,
    )
    return "\n".join(lines) + "\n\n" + plot
