"""Observability: probes, run manifests, timeline export, logging.

The paper's claims are statements about *time-resolved* behaviour —
queue depth, channel occupancy, per-thread starvation over ticks — but
a :class:`~repro.core.metrics.SimulationResult` is an end-of-run
aggregate. This package makes individual runs explainable and sweep
campaigns monitorable without perturbing either engine:

* :class:`Probe` / :class:`ProbeSample` — the sampling protocol both
  engines invoke at ``SimulationConfig.probe_stride``. Probes observe;
  they can never change a result (enforced by differential tests).
* :class:`TimelineProbe` — the built-in collector: dense time-series of
  HBM occupancy, DRAM queue depth, channel busy counts, and per-thread
  stall state.
* :class:`RunManifest` — a JSON sidecar describing one run end to end:
  config, workload attestation, resolved engine, semantics version,
  host info, and a wall-time breakdown by phase.
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` export; the file opens in Perfetto / about:tracing
  (:func:`merge_chrome_traces` combines per-job traces into one
  multi-track document).
* :class:`MetricsRegistry` (``repro.obs.metrics``) — process-safe
  counters/gauges/histograms with commutative snapshot merge and
  Prometheus text export; the campaign telemetry spine
  (``repro.analysis.telemetry``) is built on it.
* :func:`get_logger` / :func:`configure_logging` — the structured
  logging spine used by the sweep harness and the CLI.

See ``docs/OBSERVABILITY.md`` for the full guide.
"""

from .log import configure_logging, get_logger, reset_warn_once, warn_once
from .manifest import RunManifest, host_info
from .metrics import (
    MetricsRegistry,
    active_registry,
    phase,
    record_phase,
    render_prom,
    set_active_registry,
    write_prom,
)
from .probe import CallbackProbe, Probe, ProbeSample, TimelineProbe
from .trace import (
    ascii_timeline,
    chrome_trace,
    merge_chrome_traces,
    write_chrome_trace,
    write_timeline_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "active_registry",
    "set_active_registry",
    "record_phase",
    "phase",
    "render_prom",
    "write_prom",
    "merge_chrome_traces",
    "Probe",
    "ProbeSample",
    "TimelineProbe",
    "CallbackProbe",
    "RunManifest",
    "host_info",
    "chrome_trace",
    "write_chrome_trace",
    "write_timeline_jsonl",
    "ascii_timeline",
    "get_logger",
    "configure_logging",
    "warn_once",
    "reset_warn_once",
]
