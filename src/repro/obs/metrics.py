"""Process-safe campaign metrics: Counter / Gauge / Histogram families.

A campaign is executed by many processes at once — the parent
:class:`~repro.analysis.SweepRunner` plus a pool of workers — so its
telemetry cannot live in one process's variables. This module gives
every process a :class:`MetricsRegistry` of labeled metric series whose
*merge* operation is commutative and associative:

* :class:`Counter` — monotone totals; merge adds.
* :class:`Gauge` — point-in-time values; merge takes the elementwise
  maximum (a high-watermark), the only order-independent choice that
  needs no cross-process clock.
* :class:`Histogram` — fixed-bound bucket counts plus sum/count; merge
  adds bucketwise. Bucket bounds are part of a family's identity: a
  merge with different bounds is a hard error, never a silent reshape.

Workers populate a fresh registry per job attempt and piggyback its
:meth:`~MetricsRegistry.snapshot` back to the parent on the job outcome
(and on heartbeat files for long-running jobs); the parent merges the
deltas into the live campaign registry in completion order. Because all
merges commute, the aggregate is independent of worker scheduling.

The **phase profiler** rides on the same registry: engines and the
sweep runner wrap their hot-path stages (``workload_build``,
``simulate``, ``fast_forward``, ``cache_probe``, ``batch_form``,
``reduce``) in :func:`phase` / :func:`record_phase`, which observe into
the ``repro_phase_seconds`` histogram of whatever registry is *active*
in the process (:func:`set_active_registry`). With no active registry
every hook degrades to a single ``is None`` check, keeping the
engines' <2% off-overhead guarantee (``benchmarks/test_bench_obs.py``).

:func:`render_prom` serializes a registry in the Prometheus text
exposition format, for ``repro run --metrics-out PATH`` and any future
scrape endpoint.
"""

from __future__ import annotations

import math
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "PHASE_METRIC",
    "active_registry",
    "set_active_registry",
    "record_phase",
    "phase",
    "render_prom",
    "write_prom",
]

#: histogram bounds tuned for simulation phases: sub-millisecond cache
#: probes up to multi-minute paper-scale jobs (+Inf is implicit)
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: the phase profiler's histogram family name
PHASE_METRIC = "repro_phase_seconds"

#: snapshot wire-format version (bump on incompatible change)
SNAPSHOT_SCHEMA = "repro.obs.metrics/v1"

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared family plumbing: name, help text, labeled series dict."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._series: dict[_LabelKey, Any] = {}

    def series(self) -> dict[_LabelKey, Any]:
        """Label-key -> value view (copied; safe to iterate)."""
        with self._lock:
            return dict(self._series)


class Counter(_Metric):
    """A monotonically increasing total. Merge semantics: addition."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def _merge_value(self, key: _LabelKey, incoming: Any) -> None:
        self._series[key] = self._series.get(key, 0.0) + float(incoming)


class Gauge(_Metric):
    """A point-in-time value. Merge semantics: elementwise maximum.

    Within one process :meth:`set` is last-write-wins (the natural
    gauge reading); *across* processes a merge keeps the maximum, so a
    snapshot union is a high-watermark and independent of merge order.
    Campaign-level instantaneous gauges (throughput, ETA) are set only
    by the parent and never merged, so they keep plain gauge semantics.
    """

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def _merge_value(self, key: _LabelKey, incoming: Any) -> None:
        current = self._series.get(key)
        incoming = float(incoming)
        if current is None or incoming > current:
            self._series[key] = incoming


class Histogram(_Metric):
    """Fixed-bound bucket counts plus sum and count. Merge: bucketwise add.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket (``+Inf``) is implicit. Bounds are frozen at family
    creation and are part of the family's identity — merging snapshots
    with different bounds raises, guaranteeing bucket stability across
    every process of a campaign.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds = tuple(float(b) for b in bounds)

    def _empty(self) -> dict[str, Any]:
        return {"buckets": [0] * (len(self.bounds) + 1), "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        value = float(value)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = self._series[key] = self._empty()
            idx = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    idx = i
                    break
            cell["buckets"][idx] += 1
            cell["sum"] += value
            cell["count"] += 1

    def cell(self, **labels: Any) -> dict[str, Any]:
        """The ``{"buckets", "sum", "count"}`` cell for one label set."""
        with self._lock:
            cell = self._series.get(_label_key(labels))
            return dict(cell) if cell is not None else self._empty()

    def _merge_value(self, key: _LabelKey, incoming: Mapping[str, Any]) -> None:
        buckets = list(incoming["buckets"])
        if len(buckets) != len(self.bounds) + 1:
            raise ValueError(
                f"histogram {self.name}: incoming snapshot has "
                f"{len(buckets)} buckets, family has {len(self.bounds) + 1}"
            )
        cell = self._series.get(key)
        if cell is None:
            cell = self._series[key] = self._empty()
        for i, n in enumerate(buckets):
            cell["buckets"][i] += int(n)
        cell["sum"] += float(incoming["sum"])
        cell["count"] += int(incoming["count"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A process-local set of metric families with mergeable snapshots.

    Thread-safe: one re-entrant lock guards every family (worker
    heartbeat threads snapshot while the job thread records). Merging a
    snapshot is type- and bound-checked; counters and histograms add,
    gauges take the maximum, so for any set of snapshots the merged
    registry is independent of merge order (property-tested in
    ``tests/test_telemetry.py``).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Metric] = {}

    # -- family accessors (get-or-create) ------------------------------

    def _family(self, cls: type, name: str, help: str, **kwargs: Any) -> Any:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = cls(name, help, self._lock, **kwargs)
            elif not isinstance(fam, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}, "
                    f"not {cls.kind}"
                )
            return fam

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        fam = self._family(Histogram, name, help, bounds=tuple(bounds))
        if fam.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{fam.bounds}, not {tuple(bounds)}"
            )
        return fam

    def families(self) -> dict[str, _Metric]:
        with self._lock:
            return dict(self._families)

    def __bool__(self) -> bool:
        with self._lock:
            return any(f._series for f in self._families.values())

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able copy of every family (the piggyback wire format)."""
        with self._lock:
            doc: dict[str, Any] = {"schema": SNAPSHOT_SCHEMA, "families": {}}
            for name, fam in sorted(self._families.items()):
                entry: dict[str, Any] = {
                    "kind": fam.kind,
                    "help": fam.help,
                    "series": [
                        [
                            [list(pair) for pair in key],
                            (dict(value) if isinstance(value, dict) else value),
                        ]
                        for key, value in sorted(fam._series.items())
                    ],
                }
                if isinstance(fam, Histogram):
                    entry["bounds"] = list(fam.bounds)
                doc["families"][name] = entry
            return doc

    def merge(self, snapshot: Mapping[str, Any] | "MetricsRegistry") -> None:
        """Fold another registry's snapshot into this one (commutative)."""
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.snapshot()
        families = snapshot.get("families", {})
        with self._lock:
            for name, entry in families.items():
                kind = entry.get("kind")
                cls = _KINDS.get(kind)
                if cls is None:
                    raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
                if cls is Histogram:
                    fam = self.histogram(
                        name, entry.get("help", ""),
                        bounds=tuple(entry.get("bounds", DEFAULT_SECONDS_BUCKETS)),
                    )
                else:
                    fam = self._family(cls, name, entry.get("help", ""))
                for raw_key, value in entry.get("series", []):
                    key = tuple((str(k), str(v)) for k, v in raw_key)
                    fam._merge_value(key, value)

    def clear(self) -> None:
        with self._lock:
            self._families.clear()


# -- the active registry: where phase timers and engine hooks record ----

_ACTIVE: MetricsRegistry | None = None


def active_registry() -> MetricsRegistry | None:
    """The registry instrumentation hooks currently record into."""
    return _ACTIVE


def set_active_registry(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install ``registry`` as the process's active sink; returns the old.

    The sweep worker pushes a fresh registry around each job attempt
    (so deltas are per-job) and restores the previous one afterwards;
    the parent installs the campaign registry for the duration of a
    run. ``None`` disables all hooks at the cost of one ``is None``
    check each.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def record_phase(name: str, seconds: float) -> None:
    """Observe one phase duration into the active registry (no-op when
    no registry is active)."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.histogram(
        PHASE_METRIC, "wall time per runner/engine phase"
    ).observe(seconds, phase=name)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time the body as one observation of phase ``name``.

    Pays two ``perf_counter`` calls only when a registry is active.
    """
    if _ACTIVE is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        record_phase(name, time.perf_counter() - start)


# -- Prometheus text exposition -----------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(key) + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def render_prom(registry: MetricsRegistry) -> str:
    """Serialize a registry in the Prometheus text exposition format.

    Families and series are emitted in sorted order, so two renders of
    equal registries are byte-identical (stable for tests and diffs).
    """
    lines: list[str] = []
    for name, fam in sorted(registry.families().items()):
        if fam.help:
            lines.append(f"# HELP {name} {fam.help}")
        lines.append(f"# TYPE {name} {fam.kind}")
        series = sorted(fam.series().items())
        if isinstance(fam, Histogram):
            for key, cell in series:
                cumulative = 0
                for bound, count in zip(
                    tuple(fam.bounds) + (float("inf"),), cell["buckets"]
                ):
                    cumulative += count
                    le = _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(key, (('le', le),))} {cumulative}"
                    )
                lines.append(f"{name}_sum{_format_labels(key)} {cell['sum']!r}")
                lines.append(f"{name}_count{_format_labels(key)} {cell['count']}")
        else:
            for key, value in series:
                lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prom(registry: MetricsRegistry, path: str | os.PathLike) -> Path:
    """Atomically write :func:`render_prom` output to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_text(render_prom(registry), encoding="utf-8")
    os.replace(tmp, path)
    return path
