"""The probe protocol: tick-level sampling shared by both engines.

A probe is attached via ``SimulationConfig.probes``. Every
``probe_stride`` ticks each engine builds one :class:`ProbeSample` from
its own state — the reference engine from its dict/list bookkeeping,
the fast engine from its dense arrays — and hands it to every attached
probe. The two engines emit samples under the identical condition
(``tick % probe_stride == 0``, evaluated after the paper's step 5), so
on any fast-eligible config the reference and fast sample series agree
tick for tick; ``tests/test_obs.py`` enforces this differentially.

Probes are observers only. They never touch engine state or the RNG,
so a run with probes attached produces a bit-identical
:class:`~repro.core.metrics.SimulationResult` to the same run without
them (also enforced differentially). When ``config.probes`` is empty
the engines skip the sampling branch entirely — the only residual cost
is one falsy check per tick (bounded <2% by
``benchmarks/test_bench_obs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "ProbeSample",
    "Probe",
    "TimelineProbe",
    "CallbackProbe",
    "emit",
    "materialize_interval_samples",
]


@dataclass(frozen=True)
class ProbeSample:
    """One tick-level observation, identical across engines.

    All quantities are read at the *end* of the sampled tick, after the
    paper's step 5 (fetch) completes.

    Attributes
    ----------
    tick:
        The sampled tick (0-based).
    hbm_occupancy:
        Resident pages in HBM.
    queue_depth:
        Requests waiting in the DRAM queue.
    ready_threads:
        Cores that will issue or retry a request next tick.
    channels_busy:
        Far channels that carried a page this tick (= pages fetched
        this tick; at most ``channels_total``).
    channels_total:
        The configured channel count ``q``.
    fetches / evictions:
        Cumulative counters up to and including this tick.
    blocked:
        Boolean array, one slot per core: True while the core's current
        request waits in the DRAM queue.
    stall_age:
        Int64 array: for blocked cores, ticks waited so far on the
        outstanding miss (>= 1); 0 for unblocked or finished cores.
    """

    tick: int
    hbm_occupancy: int
    queue_depth: int
    ready_threads: int
    channels_busy: int
    channels_total: int
    fetches: int
    evictions: int
    blocked: np.ndarray
    stall_age: np.ndarray

    @property
    def blocked_threads(self) -> int:
        """Number of cores currently stalled on DRAM."""
        return int(self.blocked.sum())

    @property
    def max_stall_age(self) -> int:
        """Longest outstanding stall at this tick (0 if none)."""
        return int(self.stall_age.max()) if len(self.stall_age) else 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly flat dict (thread arrays become lists)."""
        return {
            "tick": self.tick,
            "hbm_occupancy": self.hbm_occupancy,
            "queue_depth": self.queue_depth,
            "ready_threads": self.ready_threads,
            "channels_busy": self.channels_busy,
            "channels_total": self.channels_total,
            "fetches": self.fetches,
            "evictions": self.evictions,
            "blocked": self.blocked.astype(int).tolist(),
            "stall_age": self.stall_age.tolist(),
        }


class Probe:
    """Base class / protocol for engine probes.

    Subclasses override any of the three hooks; every hook is optional
    and a no-op by default, so a probe only pays for what it observes.
    """

    def on_run_start(self, num_threads: int, config: Any) -> None:
        """Called once before tick 0."""

    def on_sample(self, sample: ProbeSample) -> None:
        """Called every ``probe_stride`` ticks."""

    def on_run_end(self, result: Any) -> None:
        """Called once with the finalized SimulationResult."""


class TimelineProbe(Probe):
    """Collects every sample; the input for timeline export.

    >>> probe = TimelineProbe()
    >>> # config = SimulationConfig(..., probes=(probe,), probe_stride=16)
    >>> # after the run: probe.samples, probe.as_arrays(), len(probe)
    """

    def __init__(self) -> None:
        self.samples: list[ProbeSample] = []
        self.num_threads: int | None = None
        self.config: Any = None
        self.result: Any = None

    def on_run_start(self, num_threads: int, config: Any) -> None:
        self.samples.clear()
        self.num_threads = num_threads
        self.config = config
        self.result = None

    def on_sample(self, sample: ProbeSample) -> None:
        self.samples.append(sample)

    def on_run_end(self, result: Any) -> None:
        self.result = result

    def __len__(self) -> int:
        return len(self.samples)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Column-oriented view: scalar series plus (samples, p) matrices."""
        if not self.samples:
            return {}
        scalars = (
            "tick",
            "hbm_occupancy",
            "queue_depth",
            "ready_threads",
            "channels_busy",
            "fetches",
            "evictions",
        )
        out: dict[str, np.ndarray] = {
            name: np.array([getattr(s, name) for s in self.samples], dtype=np.int64)
            for name in scalars
        }
        out["blocked"] = np.stack([s.blocked for s in self.samples])
        out["stall_age"] = np.stack([s.stall_age for s in self.samples])
        return out


class CallbackProbe(Probe):
    """Adapts a plain callable ``fn(sample)`` into a probe."""

    def __init__(self, fn: Callable[[ProbeSample], None]) -> None:
        self.fn = fn

    def on_sample(self, sample: ProbeSample) -> None:
        self.fn(sample)


def emit(probes: Sequence[Any], sample: ProbeSample) -> None:
    """Deliver one sample to every attached probe (engine helper)."""
    for probe in probes:
        probe.on_sample(sample)


def materialize_interval_samples(
    probes: Sequence[Any],
    *,
    start: int,
    end: int,
    stride: int,
    channels: int,
    fetches0: int,
    evictions0: int,
    grants_per_tick: Sequence[int],
    evicts_per_tick: Sequence[int],
    queue_per_tick: Sequence[int],
    resident_per_tick: Sequence[int],
    serve_threads: Sequence[int],
    serve_ticks: Sequence[int],
    grant_threads: Sequence[int],
    grant_ticks: Sequence[int],
    request_tick: np.ndarray,
    live: np.ndarray,
    completion_tick: dict[int, int],
) -> None:
    """Reconstruct the samples a skipped interval ``[start, end)`` owes.

    When an engine fast-forwards a quiescent interval (see
    :mod:`repro.core.drain`) the per-tick sampling branch never runs,
    but the drain schedule determines every sampled quantity in closed
    form: occupancy/queue-depth/grant/eviction histories are per-tick
    end-of-tick values, the ready set on a tick is (continuing cores
    served that tick) + (cores granted that tick), and stall ages
    follow from replaying request-issue ticks over the serve events.
    This walks the interval emitting exactly the samples the per-tick
    engines would have, so probe series are bit-identical either way.

    ``request_tick`` (per-core issue ticks at interval entry) and
    ``live`` (per-core "has a current request" flags at entry) are
    mutated during the replay — pass copies. ``completion_tick`` maps
    cores completing inside the interval to their final serve tick.
    """
    si = gi = 0
    n_serve = len(serve_ticks)
    n_grant = len(grant_ticks)
    fetches = fetches0
    evictions = evictions0
    for k, tau in enumerate(range(start, end)):
        served_now: list[int] = []
        while si < n_serve and serve_ticks[si] == tau:
            i = serve_threads[si]
            if completion_tick.get(i, -1) == tau:
                live[i] = False
            else:
                request_tick[i] = tau + 1
                served_now.append(i)
            si += 1
        granted_now: list[int] = []
        while gi < n_grant and grant_ticks[gi] == tau:
            granted_now.append(grant_threads[gi])
            gi += 1
        fetches += grants_per_tick[k]
        evictions += evicts_per_tick[k]
        if tau % stride == 0:
            blocked = live.copy()
            for i in served_now:
                blocked[i] = False
            for i in granted_now:
                blocked[i] = False
            stall_age = np.where(blocked, tau + 1 - request_tick, 0).astype(
                np.int64
            )
            sample = ProbeSample(
                tick=tau,
                hbm_occupancy=resident_per_tick[k],
                queue_depth=queue_per_tick[k],
                ready_threads=len(served_now) + len(granted_now),
                channels_busy=grants_per_tick[k],
                channels_total=channels,
                fetches=fetches,
                evictions=evictions,
                blocked=blocked,
                stall_age=stall_age,
            )
            for probe in probes:
                probe.on_sample(sample)
