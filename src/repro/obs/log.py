"""Structured logging spine for the repro package.

Library modules obtain loggers with :func:`get_logger` and emit under
the ``repro.*`` namespace; nothing in the library ever attaches
handlers or changes levels, so embedding applications keep full
control. The CLI (and tests that want readable output) call
:func:`configure_logging` once, which is idempotent and maps the
``-v/-q`` flags onto levels:

===========  =========
verbosity    level
===========  =========
``<= -1``    WARNING (quiet)
``0``        INFO (default)
``>= 1``     DEBUG (verbose)
===========  =========
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Any, Hashable

__all__ = [
    "get_logger",
    "configure_logging",
    "verbosity_level",
    "warn_once",
    "reset_warn_once",
]

#: root of the package's logger namespace
ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: marker attribute so reconfiguration replaces only our own handler
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger in the ``repro`` namespace.

    ``get_logger("sweep")`` and ``get_logger("repro.sweep")`` both
    return the ``repro.sweep`` logger.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def verbosity_level(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count onto a logging level."""
    if verbosity <= -1:
        return logging.WARNING
    if verbosity == 0:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, stream: IO[str] | None = None
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger (idempotent).

    Returns the configured root ``repro`` logger. Calling again replaces
    the previously installed handler (so tests and repeated CLI entry
    points never stack duplicates) and leaves any handlers installed by
    the embedding application untouched.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(verbosity_level(verbosity))
    # our handler is the terminus; don't duplicate into the root logger
    logger.propagate = False
    return logger


#: keys already warned about via :func:`warn_once`
_WARNED: set[Hashable] = set()


def warn_once(logger: logging.Logger, key: Hashable, msg: str, *args: Any) -> bool:
    """Emit ``logger.warning(msg, *args)`` once per distinct ``key``.

    Data-quality warnings inside per-record loops (e.g. a sweep
    aggregation dropping a bad point) would otherwise repeat for every
    campaign replaying the same records; deduplicating on a
    caller-chosen key keeps each distinct problem visible exactly once
    per process. Returns True when the warning was actually emitted.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    logger.warning(msg, *args)
    return True


def reset_warn_once() -> None:
    """Forget all :func:`warn_once` keys (for tests)."""
    _WARNED.clear()
