"""Structured logging spine for the repro package.

Library modules obtain loggers with :func:`get_logger` and emit under
the ``repro.*`` namespace; nothing in the library ever attaches
handlers or changes levels, so embedding applications keep full
control. The CLI (and tests that want readable output) call
:func:`configure_logging` once, which is idempotent and maps the
``-v/-q`` flags onto levels:

===========  =========
verbosity    level
===========  =========
``<= -1``    WARNING (quiet)
``0``        INFO (default)
``>= 1``     DEBUG (verbose)
===========  =========
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Any, Hashable

__all__ = [
    "get_logger",
    "configure_logging",
    "verbosity_level",
    "warn_once",
    "reset_warn_once",
    "begin_warning_capture",
    "drain_captured_warnings",
    "forward_warnings",
]

#: root of the package's logger namespace
ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: marker attribute so reconfiguration replaces only our own handler
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger in the ``repro`` namespace.

    ``get_logger("sweep")`` and ``get_logger("repro.sweep")`` both
    return the ``repro.sweep`` logger.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def verbosity_level(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count onto a logging level."""
    if verbosity <= -1:
        return logging.WARNING
    if verbosity == 0:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, stream: IO[str] | None = None
) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` logger (idempotent).

    Returns the configured root ``repro`` logger. Calling again replaces
    the previously installed handler (so tests and repeated CLI entry
    points never stack duplicates) and leaves any handlers installed by
    the embedding application untouched.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(verbosity_level(verbosity))
    # our handler is the terminus; don't duplicate into the root logger
    logger.propagate = False
    return logger


#: keys already warned about via :func:`warn_once`
_WARNED: set[Hashable] = set()

#: when not None, warnings are buffered here instead of emitted (pool
#: workers: the parent re-emits with cross-worker dedup)
_CAPTURE: list[dict[str, str]] | None = None


def warn_once(logger: logging.Logger, key: Hashable, msg: str, *args: Any) -> bool:
    """Emit ``logger.warning(msg, *args)`` once per distinct ``key``.

    Data-quality warnings inside per-record loops (e.g. a sweep
    aggregation dropping a bad point) would otherwise repeat for every
    campaign replaying the same records; deduplicating on a
    caller-chosen key keeps each distinct problem visible exactly once
    per process. Returns True when the warning was actually emitted.

    Inside a pool worker (see :func:`begin_warning_capture`) nothing is
    logged locally: the rendered warning is buffered, piggybacked to
    the parent on the next job outcome, and re-emitted there through
    :func:`forward_warnings` — whose dedup key is the *warning's* key,
    not the worker's pid, so an N-worker campaign prints each distinct
    warning once instead of N times.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    if _CAPTURE is not None:
        _CAPTURE.append(
            {
                "logger": logger.name,
                "key": repr(key),
                "message": (msg % args) if args else msg,
            }
        )
        return True
    logger.warning(msg, *args)
    return True


def begin_warning_capture() -> None:
    """Switch :func:`warn_once` into buffering mode (pool workers only).

    Idempotent; there is deliberately no way to switch back — a worker
    process stays a worker for its lifetime.
    """
    global _CAPTURE
    if _CAPTURE is None:
        _CAPTURE = []


def drain_captured_warnings() -> list[dict[str, str]]:
    """Return and clear the buffered worker warnings (empty when
    capture mode is off or nothing was warned)."""
    global _CAPTURE
    if not _CAPTURE:
        return []
    drained, _CAPTURE = _CAPTURE, []
    return drained


def forward_warnings(items: list[dict[str, str]]) -> int:
    """Re-emit worker-captured warnings in the parent, deduplicated.

    The dedup key is the original ``warn_once`` key's repr, so the same
    warning raised by every worker of a campaign is printed exactly
    once. Returns the number actually emitted.
    """
    emitted = 0
    for item in items:
        logger = logging.getLogger(item.get("logger") or ROOT_LOGGER)
        if warn_once(
            logger,
            ("forwarded-worker-warning", item.get("key")),
            "%s",
            item.get("message", ""),
        ):
            emitted += 1
    return emitted


def reset_warn_once() -> None:
    """Forget all :func:`warn_once` keys and buffered captures (tests)."""
    _WARNED.clear()
    if _CAPTURE is not None:
        _CAPTURE.clear()
