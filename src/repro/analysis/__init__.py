"""Sweep harness, statistics, telemetry, and terminal rendering."""

from .asciiplot import line_plot, scatter_plot, sparkline
from .benchtrend import (
    BenchDiff,
    BenchEntry,
    compare as compare_bench,
    format_report as format_bench_report,
    load_baseline,
    load_bench_files,
    record as record_bench,
)
from .faults import InjectedFault, parse_fault_plan, set_fault_plan
from .report import markdown_table, render_report, write_report
from .resultcache import ResultCache, sweep_result_key
from .stats import fairness_summary, group_records, ratio_series
from .sweep import (
    CampaignStats,
    JobTimeout,
    PayloadRequest,
    SweepError,
    SweepFailure,
    SweepJob,
    SweepPayload,
    SweepRecord,
    SweepRunner,
    WorkloadSpec,
    run_sweep,
    set_execution_defaults,
    set_result_cache_default,
)
from .tables import format_table, to_csv, write_csv
from .telemetry import (
    CampaignTelemetry,
    HeartbeatWriter,
    default_telemetry,
    set_telemetry_defaults,
)

__all__ = [
    "BenchDiff",
    "BenchEntry",
    "CampaignTelemetry",
    "HeartbeatWriter",
    "compare_bench",
    "default_telemetry",
    "format_bench_report",
    "load_baseline",
    "load_bench_files",
    "record_bench",
    "set_telemetry_defaults",
    "CampaignStats",
    "InjectedFault",
    "JobTimeout",
    "PayloadRequest",
    "SweepError",
    "SweepFailure",
    "SweepJob",
    "SweepPayload",
    "SweepRecord",
    "SweepRunner",
    "WorkloadSpec",
    "parse_fault_plan",
    "run_sweep",
    "set_execution_defaults",
    "set_fault_plan",
    "set_result_cache_default",
    "ResultCache",
    "sweep_result_key",
    "format_table",
    "to_csv",
    "write_csv",
    "line_plot",
    "scatter_plot",
    "sparkline",
    "ratio_series",
    "group_records",
    "fairness_summary",
    "markdown_table",
    "render_report",
    "write_report",
]
