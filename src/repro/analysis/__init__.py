"""Sweep harness, statistics, and terminal rendering."""

from .asciiplot import line_plot, scatter_plot, sparkline
from .faults import InjectedFault, parse_fault_plan, set_fault_plan
from .report import markdown_table, render_report, write_report
from .resultcache import ResultCache, sweep_result_key
from .stats import fairness_summary, group_records, ratio_series
from .sweep import (
    CampaignStats,
    JobTimeout,
    PayloadRequest,
    SweepError,
    SweepFailure,
    SweepJob,
    SweepPayload,
    SweepRecord,
    SweepRunner,
    WorkloadSpec,
    run_sweep,
    set_execution_defaults,
    set_result_cache_default,
)
from .tables import format_table, to_csv, write_csv

__all__ = [
    "CampaignStats",
    "InjectedFault",
    "JobTimeout",
    "PayloadRequest",
    "SweepError",
    "SweepFailure",
    "SweepJob",
    "SweepPayload",
    "SweepRecord",
    "SweepRunner",
    "WorkloadSpec",
    "parse_fault_plan",
    "run_sweep",
    "set_execution_defaults",
    "set_fault_plan",
    "set_result_cache_default",
    "ResultCache",
    "sweep_result_key",
    "format_table",
    "to_csv",
    "write_csv",
    "line_plot",
    "scatter_plot",
    "sparkline",
    "ratio_series",
    "group_records",
    "fairness_summary",
    "markdown_table",
    "render_report",
    "write_report",
]
