"""Parameter-sweep harness (paper section 1.2's experimental grid).

The paper varies: HBM size, trace source, core count, work
distribution, permutation scheme, remap period, channel count, and
queue policy. A sweep here is a list of :class:`SweepJob` s — each names
a workload *by generator spec* (kind, threads, seed, params) plus a
:class:`~repro.core.SimulationConfig` — executed across worker
processes. Jobs carry specs rather than trace arrays so that workers
regenerate (or cache-load) workloads locally instead of pickling
multi-megabyte traces through the pool; the disk cache is warmed in the
parent first so each expensive instrumented workload is generated
exactly once.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from ..core import SimulationConfig, SimulationResult
from ..core.fastengine import simulate
from ..traces import Workload, WorkloadCache, make_workload

__all__ = ["WorkloadSpec", "SweepJob", "SweepRecord", "SweepRunner", "run_sweep"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Pickle-friendly recipe for a workload."""

    kind: str
    threads: int
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, threads: int, seed: int = 0, **params: Any) -> "WorkloadSpec":
        return cls(kind, threads, seed, tuple(sorted(params.items())))

    def build(self, cache: WorkloadCache | None = None) -> Workload:
        params = dict(self.params)
        if cache is not None:
            return cache.get(self.kind, self.threads, seed=self.seed, **params)
        return make_workload(self.kind, self.threads, seed=self.seed, **params)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}(threads={self.threads}, seed={self.seed}, {inner})"


@dataclass(frozen=True)
class SweepJob:
    """One simulation to run: a workload spec plus a config."""

    workload: WorkloadSpec
    config: SimulationConfig
    tag: str = ""


@dataclass(frozen=True)
class SweepRecord:
    """Flattened outcome of one job (CSV/table-friendly)."""

    job: SweepJob
    makespan: int
    mean_response: float
    inconsistency: float
    max_response: int
    hit_rate: float
    total_requests: int
    fetches: int
    evictions: int
    wall_time_s: float

    @classmethod
    def from_result(cls, job: SweepJob, result: SimulationResult) -> "SweepRecord":
        return cls(
            job=job,
            makespan=result.makespan,
            mean_response=result.mean_response,
            inconsistency=result.inconsistency,
            max_response=result.max_response,
            hit_rate=result.hit_rate,
            total_requests=result.total_requests,
            fetches=result.fetches,
            evictions=result.evictions,
            wall_time_s=result.wall_time_s,
        )

    def row(self) -> dict[str, Any]:
        """Flat dict for table rendering / CSV export."""
        cfg = self.job.config
        return {
            "tag": self.job.tag,
            "workload": self.job.workload.kind,
            "threads": self.job.workload.threads,
            "hbm_slots": cfg.hbm_slots,
            "channels": cfg.channels,
            "arbitration": cfg.arbitration,
            "replacement": cfg.replacement,
            "remap_period": cfg.remap_period,
            "makespan": self.makespan,
            "mean_response": round(self.mean_response, 3),
            "inconsistency": round(self.inconsistency, 3),
            "max_response": self.max_response,
            "hit_rate": round(self.hit_rate, 4),
            "requests": self.total_requests,
        }


# module-level worker so ProcessPoolExecutor can pickle it
_WORKER_CACHE_DIR: str | None = None


def _pool_init(cache_dir: str | None) -> None:
    global _WORKER_CACHE_DIR
    _WORKER_CACHE_DIR = cache_dir


def _run_job(job: SweepJob) -> SweepRecord:
    cache = WorkloadCache(_WORKER_CACHE_DIR) if _WORKER_CACHE_DIR else None
    workload = job.workload.build(cache)
    # Dispatch through the engine selector: eligible (LRU, protected,
    # disjoint) configs take the vectorized fast path, everything else
    # falls back to the reference engine with identical results.
    result = simulate(workload.traces, job.config)
    return SweepRecord.from_result(job, result)


class SweepRunner:
    """Executes sweep jobs, optionally across a process pool.

    ``processes=None`` picks ``os.cpu_count()``; ``processes<=1`` runs
    sequentially in-process (useful under pytest and for debugging).
    """

    def __init__(
        self,
        processes: int | None = None,
        cache_dir: str | os.PathLike | None = None,
    ) -> None:
        self.processes = processes if processes is not None else (os.cpu_count() or 1)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None

    def prepare(self, jobs: Sequence[SweepJob]) -> None:
        """Warm the workload cache: generate each distinct spec once."""
        if self.cache_dir is None:
            return
        cache = WorkloadCache(self.cache_dir)
        for spec in dict.fromkeys(job.workload for job in jobs):
            spec.build(cache)

    def run(self, jobs: Sequence[SweepJob]) -> list[SweepRecord]:
        if not jobs:
            return []
        if self.processes <= 1 or len(jobs) == 1:
            _pool_init(self.cache_dir)
            return [_run_job(job) for job in jobs]
        self.prepare(jobs)
        with ProcessPoolExecutor(
            max_workers=min(self.processes, len(jobs)),
            initializer=_pool_init,
            initargs=(self.cache_dir,),
        ) as pool:
            return list(pool.map(_run_job, jobs, chunksize=1))


def run_sweep(
    jobs: Sequence[SweepJob],
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
) -> list[SweepRecord]:
    """One-call sweep execution."""
    return SweepRunner(processes=processes, cache_dir=cache_dir).run(jobs)
