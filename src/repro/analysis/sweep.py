"""Parameter-sweep harness (paper section 1.2's experimental grid).

The paper varies: HBM size, trace source, core count, work
distribution, permutation scheme, remap period, channel count, and
queue policy. A sweep here is a list of :class:`SweepJob` s — each names
a workload *by generator spec* (kind, threads, seed, params) plus a
:class:`~repro.core.SimulationConfig` — executed across worker
processes. Jobs carry specs rather than trace arrays so that workers
regenerate (or cache-load) workloads locally instead of pickling
multi-megabyte traces through the pool; the disk cache is warmed in the
parent first so each expensive instrumented workload is generated
exactly once.

Two further levers make repeated campaigns cheap:

* a persistent **result cache** (:mod:`repro.analysis.resultcache`):
  records are pure functions of (spec, config), so a re-run only
  simulates jobs never seen before (enabled whenever ``cache_dir`` is
  given; disable with ``result_cache=False``);
* **longest-job-first scheduling**: pool submissions are ordered by a
  crude cost hint so one straggler at the end of the job list no
  longer serializes the tail of the campaign.

Campaigns are also **fault-tolerant**: a worker exception, a job that
overruns its deadline, or an OOM-killed worker process must never abort
the sweep or discard finished work. Each job gets bounded retries with
exponential backoff; a job that exhausts them yields a *failed*
:class:`SweepRecord` carrying a structured :class:`SweepError` instead
of metrics (``keep_going`` mode, the default) or raises
:class:`SweepFailure` (``strict`` mode). A ``BrokenProcessPool`` — the
signature of a worker dying mid-job — rebuilds the pool and resubmits
only the jobs whose futures were lost; everything already finished was
stored incrementally (records and result-cache entries are written as
each future completes) and is never re-run. Failed records are never
written to the result cache. The whole path is exercised by the
deterministic fault-injection hooks in :mod:`repro.analysis.faults`.
"""

from __future__ import annotations

import asyncio
import heapq
import os
import queue
import signal
import threading
import time
import traceback as traceback_mod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from ..core import SimulationConfig, SimulationResult
from ..core.batchengine import batch_limit, batch_supported, simulate_batch
from ..core.fastengine import default_engine, resolve_engine, simulate
from ..core.metrics import (
    histogram_from_json,
    histogram_percentile,
    histogram_to_json,
)
from ..obs.log import (
    begin_warning_capture,
    drain_captured_warnings,
    forward_warnings,
    get_logger,
)
from ..obs.manifest import MANIFEST_SCHEMA, host_info
from ..obs.metrics import (
    MetricsRegistry,
    phase,
    record_phase,
    set_active_registry,
)
from ..store import (
    CampaignCheckpoint,
    ResultStore,
    campaign_id_for,
    default_store_uri,
    open_store,
    sweep_result_key,
)
from ..store.dirstore import DirectoryStore
from ..traces import Workload, WorkloadCache, make_workload
from .faults import maybe_inject, maybe_inject_parent
from .telemetry import CampaignTelemetry, HeartbeatWriter, default_telemetry

__all__ = [
    "WorkloadSpec",
    "PayloadRequest",
    "SweepPayload",
    "SweepJob",
    "SweepRecord",
    "SweepError",
    "SweepFailure",
    "JobTimeout",
    "SweepRunner",
    "CampaignStats",
    "run_sweep",
    "set_result_cache_default",
    "set_execution_defaults",
    "parse_shard",
    "sweep_job_to_dict",
    "sweep_job_from_dict",
]

log = get_logger("sweep")


class JobTimeout(Exception):
    """A sweep job overran its per-job deadline."""


@dataclass(frozen=True)
class SweepError:
    """Structured description of why a sweep job failed.

    Attached to the failed job's :class:`SweepRecord` (``keep_going``
    mode) or carried by :class:`SweepFailure` (``strict`` mode), so a
    campaign post-mortem never depends on scraping logs.

    ``kind`` is one of:

    * ``"exception"`` — the job raised in the worker;
    * ``"timeout"`` — the job overran ``job_timeout`` seconds;
    * ``"worker-lost"`` — the worker process died (OOM-kill, signal)
      and the job could not be recovered within the pool-rebuild
      budget.
    """

    kind: str
    error_type: str
    message: str
    traceback: str = ""
    #: total attempts consumed (1 = failed on the first try, no retry)
    attempts: int = 1

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


class SweepFailure(RuntimeError):
    """Raised in ``strict`` mode when a job permanently fails."""

    def __init__(self, job: "SweepJob", error: SweepError) -> None:
        super().__init__(
            f"sweep job tag={job.tag!r} "
            f"({job.workload.kind} x {job.config.arbitration}) failed: "
            f"{error.describe()}"
        )
        self.job = job
        self.error = error


@contextmanager
def _job_deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`JobTimeout` if the body runs longer than ``seconds``.

    On the main thread of a POSIX process — exactly what a pool worker
    is — uses ``SIGALRM`` (via ``setitimer``, so fractional seconds
    work), which interrupts the pure-Python tick loops that dominate
    job run time. Anywhere else (no ``SIGALRM``, or an embedder driving
    the runner from a helper thread) a daemon watchdog timer delivers
    :class:`JobTimeout` to the running thread with
    ``PyThreadState_SetAsyncExc``. The async exception lands at the
    next bytecode boundary, so Python-level loops are still
    interrupted, but one long C call (a ``sleep``, a giant numpy op)
    is not — a weaker guarantee than ``SIGALRM``, and strictly better
    than the deadline silently not existing.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):

        def _on_alarm(signum: int, frame: Any) -> None:
            raise JobTimeout(f"job exceeded its {seconds:g}s deadline")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
        return

    import ctypes

    target = threading.get_ident()
    fired = threading.Event()

    def _fire() -> None:
        fired.set()
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(target), ctypes.py_object(JobTimeout)
        )

    timer = threading.Timer(seconds, _fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    except JobTimeout:
        # the async exception arrives bare; normalize to SIGALRM's message
        raise JobTimeout(f"job exceeded its {seconds:g}s deadline") from None
    finally:
        timer.cancel()
        if fired.is_set():
            # The timer won the race against cancel(): clear any async
            # exception still pending so it cannot detonate in caller
            # code after the deadline scope has exited.
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(target), None
            )


#: default for how many times one campaign may rebuild a broken process
#: pool before declaring the still-lost jobs failed (guards against a
#: fault that kills every worker on every attempt); the live value comes
#: from :func:`set_execution_defaults` / the runner argument.
_MAX_POOL_REBUILDS = 3

#: process-wide execution-policy defaults; per-runner arguments override.
_UNSET = object()
_EXECUTION_DEFAULTS: dict[str, Any] = {
    "retries": 1,
    "job_timeout": None,
    "failure_mode": "keep_going",
    "retry_backoff_s": 0.05,
    "max_pool_rebuilds": _MAX_POOL_REBUILDS,
    "shard": None,
}

_FAILURE_MODES = ("keep_going", "strict")


def parse_shard(value: Any) -> tuple[int, int] | None:
    """Normalize a shard designator to ``(index, count)``.

    Accepts ``None``/empty (no sharding), an ``"i/n"`` string (the CLI
    form, zero-based), or an ``(i, n)`` pair. ``n`` must be positive and
    ``0 <= i < n``; ``1`` shards (``"0/1"``) is explicitly allowed — it
    runs the whole campaign but still takes leases, which is how a
    single process joins a store other shards are draining.
    """
    if value is None or value == "":
        return None
    if isinstance(value, str):
        index_s, sep, count_s = value.partition("/")
        if not sep:
            raise ValueError(f"shard must look like 'i/n', got {value!r}")
        try:
            index, count = int(index_s), int(count_s)
        except ValueError:
            raise ValueError(f"shard must look like 'i/n', got {value!r}") from None
    else:
        index, count = value
        index, count = int(index), int(count)
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must satisfy 0 <= i < n, got {index}/{count}"
        )
    return index, count


def set_execution_defaults(
    retries: Any = _UNSET,
    job_timeout: Any = _UNSET,
    failure_mode: Any = _UNSET,
    retry_backoff_s: Any = _UNSET,
    max_pool_rebuilds: Any = _UNSET,
    shard: Any = _UNSET,
) -> dict[str, Any]:
    """Set process-wide fault-tolerance defaults; returns the old ones.

    Used by the CLI's ``--retries`` / ``--job-timeout`` /
    ``--strict`` / ``--keep-going`` / ``--retry-backoff`` /
    ``--max-pool-rebuilds`` flags (the experiment registry's
    ``(scale, processes, cache_dir, seed)`` signature has no room for
    them); individual :class:`SweepRunner` s can still override via
    constructor arguments. Restore with
    ``set_execution_defaults(**previous)``.
    """
    previous = dict(_EXECUTION_DEFAULTS)
    if retries is not _UNSET:
        if retries is None or int(retries) < 0:
            raise ValueError(f"retries must be a non-negative int, got {retries!r}")
        _EXECUTION_DEFAULTS["retries"] = int(retries)
    if job_timeout is not _UNSET:
        _EXECUTION_DEFAULTS["job_timeout"] = (
            float(job_timeout) if job_timeout is not None else None
        )
    if failure_mode is not _UNSET:
        if failure_mode not in _FAILURE_MODES:
            raise ValueError(
                f"failure_mode must be one of {_FAILURE_MODES}, got {failure_mode!r}"
            )
        _EXECUTION_DEFAULTS["failure_mode"] = failure_mode
    if retry_backoff_s is not _UNSET:
        _EXECUTION_DEFAULTS["retry_backoff_s"] = float(retry_backoff_s)
    if max_pool_rebuilds is not _UNSET:
        if max_pool_rebuilds is None or int(max_pool_rebuilds) < 0:
            raise ValueError(
                "max_pool_rebuilds must be a non-negative int, "
                f"got {max_pool_rebuilds!r}"
            )
        _EXECUTION_DEFAULTS["max_pool_rebuilds"] = int(max_pool_rebuilds)
    if shard is not _UNSET:
        _EXECUTION_DEFAULTS["shard"] = parse_shard(shard)
    return previous


@dataclass(frozen=True)
class WorkloadSpec:
    """Pickle-friendly recipe for a workload."""

    kind: str
    threads: int
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, threads: int, seed: int = 0, **params: Any) -> "WorkloadSpec":
        return cls(kind, threads, seed, tuple(sorted(params.items())))

    def build(self, cache: WorkloadCache | None = None) -> Workload:
        params = dict(self.params)
        if cache is not None:
            return cache.get(self.kind, self.threads, seed=self.seed, **params)
        return make_workload(self.kind, self.threads, seed=self.seed, **params)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}(threads={self.threads}, seed={self.seed}, {inner})"


@dataclass(frozen=True)
class PayloadRequest:
    """What extra data a job asks its record to carry beyond the metrics.

    A slim record (the default) holds scalar metrics only. A *fat*
    record additionally carries the requested payloads, which the
    result cache persists and replays like any other field:

    * ``response_histogram`` — the run's global response-time
      distribution plus per-thread summary statistics (the raw material
      of the paper's inconsistency/fairness analysis, Figures 4-5);
    * ``response_series`` — the exact per-thread response-time
      sequences (sets ``record_responses`` on the engine; memory-heavy,
      meant for small runs and tests);
    * ``probe_samples`` — a :class:`~repro.obs.TimelineProbe` attached
      at ``probe_stride``, its samples stored as flat dicts.

    The request is part of the result-cache key (see
    :func:`repro.analysis.resultcache.sweep_result_key`), so slim and
    fat records of the same (spec, config) never collide; an empty
    request leaves the key unchanged from the slim-era format, keeping
    existing caches warm.
    """

    response_histogram: bool = False
    response_series: bool = False
    probe_samples: bool = False
    probe_stride: int = 1024

    def __bool__(self) -> bool:
        return self.response_histogram or self.response_series or self.probe_samples

    def to_dict(self) -> dict[str, Any]:
        """Canonical dict for cache-key hashing."""
        return {
            "response_histogram": self.response_histogram,
            "response_series": self.response_series,
            "probe_samples": self.probe_samples,
            # the stride changes what gets sampled, so it is part of
            # the key — but only when sampling is actually requested
            "probe_stride": self.probe_stride if self.probe_samples else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PayloadRequest":
        """Inverse of :meth:`to_dict` (checkpoint job round-trip)."""
        stride = data.get("probe_stride")
        return cls(
            response_histogram=bool(data.get("response_histogram", False)),
            response_series=bool(data.get("response_series", False)),
            probe_samples=bool(data.get("probe_samples", False)),
            probe_stride=int(stride) if stride else 1024,
        )


@dataclass(frozen=True)
class SweepPayload:
    """The payload data carried by a fat record (JSON round-trippable)."""

    #: global response-time distribution (``response -> count``)
    response_histogram: dict[int, int] | None = None
    #: per-thread summaries: thread, requests, hits, completion_tick,
    #: mean/std/max response
    thread_stats: tuple[dict[str, Any], ...] | None = None
    #: exact per-thread response-time sequences
    response_series: tuple[tuple[int, ...], ...] | None = None
    #: flat-dict probe samples (see ``ProbeSample.to_dict``)
    probe_samples: tuple[dict[str, Any], ...] | None = None
    probe_stride: int | None = None

    def response_percentile(self, fraction: float) -> int:
        """Percentile of the carried response distribution."""
        if self.response_histogram is None:
            raise ValueError("record does not carry a response histogram")
        return histogram_percentile(self.response_histogram, fraction)

    def to_json_dict(self) -> dict[str, Any]:
        """Encode for the result cache (histogram keys stringified)."""
        return {
            "response_histogram": (
                histogram_to_json(self.response_histogram)
                if self.response_histogram is not None
                else None
            ),
            "thread_stats": (
                list(self.thread_stats) if self.thread_stats is not None else None
            ),
            "response_series": (
                [list(series) for series in self.response_series]
                if self.response_series is not None
                else None
            ),
            "probe_samples": (
                list(self.probe_samples) if self.probe_samples is not None else None
            ),
            "probe_stride": self.probe_stride,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepPayload":
        """Inverse of :meth:`to_json_dict`."""
        histogram = data.get("response_histogram")
        thread_stats = data.get("thread_stats")
        series = data.get("response_series")
        samples = data.get("probe_samples")
        return cls(
            response_histogram=(
                histogram_from_json(histogram) if histogram is not None else None
            ),
            thread_stats=(
                tuple(thread_stats) if thread_stats is not None else None
            ),
            response_series=(
                tuple(tuple(int(v) for v in s) for s in series)
                if series is not None
                else None
            ),
            probe_samples=tuple(samples) if samples is not None else None,
            probe_stride=data.get("probe_stride"),
        )

    @classmethod
    def from_result(
        cls,
        request: PayloadRequest,
        result: SimulationResult,
        probe: Any = None,
    ) -> "SweepPayload | None":
        """Extract the requested payloads from a finished simulation."""
        if not request:
            return None
        histogram = None
        thread_stats = None
        if request.response_histogram:
            histogram = dict(result.response_histogram)
            thread_stats = tuple(
                {
                    "thread": t.thread,
                    "requests": t.requests,
                    "hits": t.hits,
                    "completion_tick": t.completion_tick,
                    "mean_response": t.response.mean,
                    "std_response": t.response.std,
                    "max_response": t.response.max,
                }
                for t in result.thread_stats
            )
        series = None
        if request.response_series:
            if result.response_log is None:
                raise RuntimeError(
                    "engine did not record responses despite the payload request"
                )
            series = tuple(
                tuple(int(v) for v in log) for log in result.response_log
            )
        samples = None
        if request.probe_samples:
            samples = tuple(s.to_dict() for s in probe.samples) if probe else ()
        return cls(
            response_histogram=histogram,
            thread_stats=thread_stats,
            response_series=series,
            probe_samples=samples,
            probe_stride=request.probe_stride if request.probe_samples else None,
        )


@dataclass(frozen=True)
class SweepJob:
    """One simulation to run: a workload spec plus a config.

    ``payload`` requests extra record contents (response distributions,
    raw series, probe samples) — see :class:`PayloadRequest`.
    """

    workload: WorkloadSpec
    config: SimulationConfig
    tag: str = ""
    payload: PayloadRequest = PayloadRequest()


def sweep_job_to_dict(job: SweepJob) -> dict[str, Any]:
    """JSON-able encoding of one job, for campaign checkpoints.

    Carries everything needed to reconstruct the job in a process with
    no access to the code that built it, which is what lets
    ``repro run --resume <campaign-id>`` re-derive the exact job list
    from the store alone.
    """
    return {
        "tag": job.tag,
        "workload": {
            "kind": job.workload.kind,
            "threads": job.workload.threads,
            "seed": job.workload.seed,
            "params": [[k, v] for k, v in job.workload.params],
        },
        "config": job.config.to_dict(),
        "payload": job.payload.to_dict() if job.payload else None,
    }


def sweep_job_from_dict(data: Mapping[str, Any]) -> SweepJob:
    """Inverse of :func:`sweep_job_to_dict`.

    The reconstructed job hashes to the same result key as the
    original (tuples and lists JSON-collapse identically under
    :func:`repro.store.sweep_result_key`'s canonical encoding).
    """
    spec_data = data["workload"]
    spec = WorkloadSpec(
        kind=spec_data["kind"],
        threads=int(spec_data["threads"]),
        seed=int(spec_data.get("seed", 0)),
        params=tuple(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in spec_data.get("params", ())
        ),
    )
    payload_data = data.get("payload")
    return SweepJob(
        workload=spec,
        config=SimulationConfig.from_dict(data["config"]),
        tag=data.get("tag", ""),
        payload=(
            PayloadRequest.from_dict(payload_data)
            if payload_data
            else PayloadRequest()
        ),
    )


@dataclass(frozen=True)
class SweepRecord:
    """Flattened outcome of one job (CSV/table-friendly).

    ``cached`` distinguishes a replayed record from a fresh simulation:
    on a cache hit, ``wall_time_s`` still reports the *original* run's
    simulation time (the replay itself is near-free), so performance
    analysis of warm campaigns must filter on ``cached``.

    ``payload`` holds the extra data the job requested (response
    distributions, raw series, probe samples); ``None`` for slim jobs.

    ``error`` is set only on a *failed* record (``keep_going`` mode, job
    exhausted its retries): the metric fields are all zero and the
    record is never written to the result cache. Filter with
    :attr:`failed` before aggregating.

    ``ff_elided_fraction`` is the fraction of simulated ticks elided by
    quiescent-interval fast-forward — deterministic for a (spec,
    config), identical between batched and solo execution, and cached
    like any other metric. ``batched`` instead describes *this* run's
    execution path (the job ran as a lane of a lockstep batch), so it
    is excluded from record equality and from the result cache: a
    replayed record always reports ``batched=False``. Together the two
    columns let a reducer attribute wall-time wins to fast-forward vs.
    batching.
    """

    job: SweepJob
    makespan: int
    mean_response: float
    inconsistency: float
    max_response: int
    hit_rate: float
    total_requests: int
    hits: int
    fetches: int
    evictions: int
    wall_time_s: float
    ff_elided_fraction: float = 0.0
    cached: bool = False
    batched: bool = field(default=False, compare=False)
    payload: SweepPayload | None = None
    error: SweepError | None = None

    @property
    def misses(self) -> int:
        return self.total_requests - self.hits

    @property
    def failed(self) -> bool:
        return self.error is not None

    @classmethod
    def from_error(cls, job: SweepJob, error: SweepError) -> "SweepRecord":
        """A failed-job placeholder record (all metrics zero)."""
        return cls(
            job=job,
            makespan=0,
            mean_response=0.0,
            inconsistency=0.0,
            max_response=0,
            hit_rate=0.0,
            total_requests=0,
            hits=0,
            fetches=0,
            evictions=0,
            wall_time_s=0.0,
            error=error,
        )

    @classmethod
    def from_result(
        cls,
        job: SweepJob,
        result: SimulationResult,
        payload: SweepPayload | None = None,
        batched: bool = False,
    ) -> "SweepRecord":
        return cls(
            job=job,
            makespan=result.makespan,
            mean_response=result.mean_response,
            inconsistency=result.inconsistency,
            max_response=result.max_response,
            hit_rate=result.hit_rate,
            total_requests=result.total_requests,
            hits=result.hits,
            fetches=result.fetches,
            evictions=result.evictions,
            wall_time_s=result.wall_time_s,
            ff_elided_fraction=result.ff_elided_fraction,
            batched=batched,
            payload=payload,
        )

    def row(self) -> dict[str, Any]:
        """Flat dict for table rendering / CSV export."""
        cfg = self.job.config
        return {
            "tag": self.job.tag,
            "workload": self.job.workload.kind,
            "threads": self.job.workload.threads,
            "hbm_slots": cfg.hbm_slots,
            "channels": cfg.channels,
            "arbitration": cfg.arbitration,
            "replacement": cfg.replacement,
            "remap_period": cfg.remap_period,
            "makespan": self.makespan,
            "mean_response": round(self.mean_response, 3),
            "inconsistency": round(self.inconsistency, 3),
            "max_response": self.max_response,
            "hit_rate": round(self.hit_rate, 4),
            "requests": self.total_requests,
            "fetches": self.fetches,
            "evictions": self.evictions,
            "wall_time_s": round(self.wall_time_s, 6),
            "ff_elided_fraction": round(self.ff_elided_fraction, 4),
            "batched": self.batched,
            "cached": self.cached,
            "failed": self.failed,
            "error": self.error.error_type if self.error is not None else "",
        }


# module-level worker state so ProcessPoolExecutor can pickle the worker
_WORKER_CACHE_DIR: str | None = None
_WORKER_ENGINE: str | None = None
#: heartbeat spool directory when the campaign collects telemetry
_WORKER_SPOOL_DIR: str | None = None


def _pool_init(
    cache_dir: str | None,
    engine: str | None = None,
    spool_dir: str | None = None,
    worker: bool = False,
) -> None:
    global _WORKER_CACHE_DIR, _WORKER_ENGINE, _WORKER_SPOOL_DIR
    _WORKER_CACHE_DIR = cache_dir
    _WORKER_ENGINE = engine
    _WORKER_SPOOL_DIR = spool_dir
    if worker:
        # Pool workers never log warnings directly: warn_once buffers
        # them and the parent re-emits with cross-worker dedup, so an
        # N-worker campaign prints each distinct warning once, not N
        # times. The sequential path (worker=False) logs normally.
        begin_warning_capture()


def _begin_collection(
    tag: str, attempt: int
) -> tuple[MetricsRegistry | None, MetricsRegistry | None, HeartbeatWriter | None]:
    """Install a fresh per-attempt registry + heartbeat (telemetry only).

    Returns ``(registry, previous_active, heartbeat)`` —
    ``(None, None, None)`` when the campaign collects no telemetry, so
    the job body pays nothing. The fresh registry makes the snapshot
    piggybacked on the outcome a pure *delta* for this attempt, which
    the parent merges; the heartbeat file reports liveness for jobs
    that outlast one heartbeat interval.
    """
    if _WORKER_SPOOL_DIR is None:
        return None, None, None
    registry = MetricsRegistry()
    previous = set_active_registry(registry)
    heartbeat = HeartbeatWriter(
        _WORKER_SPOOL_DIR, tag=tag, attempt=attempt, registry=registry
    ).start()
    return registry, previous, heartbeat


def _end_collection(
    registry: MetricsRegistry | None,
    previous: MetricsRegistry | None,
    heartbeat: HeartbeatWriter | None,
) -> None:
    if registry is None:
        return
    if heartbeat is not None:
        heartbeat.stop()
    set_active_registry(previous)


def _engine_config(job: SweepJob) -> tuple[SimulationConfig, Any]:
    """The config actually handed to the engine, plus any probe.

    Payload requests are satisfied by runtime-only switches: raw series
    need ``record_responses``; probe samples need a TimelineProbe
    attached. Neither changes simulation *results* (enforced by the
    differential tests in ``tests/test_obs.py``), so the record stays a
    pure function of (spec, config, payload request).
    """
    request = job.payload
    if not request:
        return job.config, None
    changes: dict[str, Any] = {}
    probe = None
    if request.response_series and not job.config.record_responses:
        changes["record_responses"] = True
    if request.probe_samples:
        from ..obs.probe import TimelineProbe

        probe = TimelineProbe()
        changes["probes"] = job.config.probes + (probe,)
        changes["probe_stride"] = request.probe_stride
    return (job.config.replace(**changes) if changes else job.config), probe


def _run_job(
    job: SweepJob, attempt: int = 1, timeout: float | None = None
) -> tuple[SweepRecord, dict[str, Any]] | SweepError:
    """Execute one job attempt; never raises for job-level failures.

    Returns ``(record, manifest)`` on success and a :class:`SweepError`
    on exception or deadline overrun, so the parent's retry logic is
    identical for the in-process and pool paths (a raised exception
    would lose the exact worker-side traceback across the pool
    boundary). A SIGKILLed worker obviously returns nothing; the parent
    observes that as ``BrokenProcessPool``.

    When the campaign collects telemetry, the attempt runs under a
    fresh metrics registry whose snapshot — plus any buffered
    ``warn_once`` output — piggybacks on the manifest under transient
    ``"metrics"`` / ``"warnings"`` keys. The parent pops both *before*
    the manifest reaches the result cache, so cache entries are byte
    identical with telemetry on or off.
    """
    registry, previous, heartbeat = _begin_collection(job.tag, attempt)
    try:
        try:
            with _job_deadline(timeout):
                maybe_inject(job.tag, attempt)
                cache = (
                    WorkloadCache(_WORKER_CACHE_DIR) if _WORKER_CACHE_DIR else None
                )
                build_start = time.perf_counter()
                workload = job.workload.build(cache)
                build_s = time.perf_counter() - build_start
                record_phase("workload_build", build_s)
                # Dispatch through the engine selector: eligible (LRU,
                # protected, disjoint) configs take the vectorized fast
                # path, everything else falls back to the reference
                # engine with identical results. The Workload object is
                # passed whole so its build-time attestation replaces
                # the per-dispatch disjointness scan.
                config, probe = _engine_config(job)
                result = simulate(workload, config, engine=_WORKER_ENGINE)
                payload = SweepPayload.from_result(job.payload, result, probe)
                record = SweepRecord.from_result(job, result, payload)
        except JobTimeout as exc:
            return SweepError(
                kind="timeout",
                error_type=type(exc).__name__,
                message=str(exc),
                traceback=traceback_mod.format_exc(),
                attempts=attempt,
            )
        except Exception as exc:
            return SweepError(
                kind="exception",
                error_type=type(exc).__name__,
                message=str(exc),
                traceback=traceback_mod.format_exc(),
                attempts=attempt,
            )
        # Run manifest stored alongside the metrics in the result
        # cache, so a replayed record stays auditable: which engine
        # produced it, on what host, where the wall time went, and on
        # which attempt.
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "engine": resolve_engine(workload, config, _WORKER_ENGINE),
            "host": host_info(),
            "timings": {
                "workload_build_s": round(build_s, 6),
                "run_s": round(result.wall_time_s, 6),
            },
            "execution": {"attempt": attempt},
        }
        _attach_piggyback(manifest, registry)
        return record, manifest
    finally:
        _end_collection(registry, previous, heartbeat)


def _attach_piggyback(
    manifest: dict[str, Any], registry: MetricsRegistry | None
) -> None:
    """Ride the attempt's metric delta and buffered warnings back to the
    parent on the manifest (transient keys, popped before caching).

    Buffered warnings are drained only here — a failed attempt keeps
    them buffered, so they ride the worker's next successful outcome
    instead of being lost.
    """
    if registry is not None and registry:
        manifest["metrics"] = registry.snapshot()
    warnings = drain_captured_warnings()
    if warnings:
        manifest["warnings"] = warnings


class _BatchAbort:
    """Sentinel outcome: the shared batch deadline fired before this
    lane got a verdict.

    A batch runs under ONE ``job_timeout`` deadline (lockstep wall time
    is common to every lane), so an overrun is not attributable to any
    single lane. Charging it to each lane's retry budget would let one
    slow batchmate permanently fail innocent jobs, so the parent reruns
    every aborted lane *solo at the same attempt number*; only the solo
    verdict — where the deadline measures that job alone — counts.
    """


_BATCH_ABORT = _BatchAbort()


def _run_batch(
    jobs: Sequence[SweepJob],
    attempts: Sequence[int],
    timeout: float | None = None,
) -> list[tuple[SweepRecord, dict[str, Any]] | SweepError | _BatchAbort]:
    """Execute one lockstep attempt over a formed batch of jobs.

    Returns one outcome per lane, positionally aligned with ``jobs`` —
    the same ``(record, manifest) | SweepError`` contract as
    :func:`_run_job`, so the parent treats a failed lane exactly like a
    failed single job (it retries it solo, where every semantic is the
    proven single path). Injected faults and workload-build errors are
    confined to their lane; engine-level lane errors come back through
    ``simulate_batch(..., return_exceptions=True)`` without discarding
    batchmates' results. The whole batch runs under one deadline — an
    overrun yields :data:`_BATCH_ABORT` for each still-unfinished lane,
    which the parent reruns solo without consuming retry budget.
    """
    outcomes: list[Any] = [None] * len(jobs)
    lane_jobs: list[int] = []
    lane_items: list[tuple[Any, SimulationConfig]] = []
    lane_probes: list[Any] = []
    lane_builds: list[float] = []
    lane_results: list[Any] = []
    registry, previous, heartbeat = _begin_collection(
        f"batch[{len(jobs)}]:{jobs[0].tag}", max(attempts)
    )
    try:
        try:
            with _job_deadline(timeout):
                cache = (
                    WorkloadCache(_WORKER_CACHE_DIR) if _WORKER_CACHE_DIR else None
                )
                for k, (job, attempt) in enumerate(zip(jobs, attempts)):
                    try:
                        maybe_inject(job.tag, attempt)
                        build_start = time.perf_counter()
                        workload = job.workload.build(cache)
                        build_s = time.perf_counter() - build_start
                        record_phase("workload_build", build_s)
                        config, probe = _engine_config(job)
                    except JobTimeout:
                        raise
                    except Exception as exc:
                        outcomes[k] = SweepError(
                            kind="exception",
                            error_type=type(exc).__name__,
                            message=str(exc),
                            traceback=traceback_mod.format_exc(),
                            attempts=attempt,
                        )
                    else:
                        lane_jobs.append(k)
                        lane_items.append((workload, config))
                        lane_probes.append(probe)
                        lane_builds.append(build_s)
                lane_results = simulate_batch(
                    lane_items, engine=_WORKER_ENGINE, return_exceptions=True
                )
        except JobTimeout:
            for k in range(len(jobs)):
                if outcomes[k] is None:
                    outcomes[k] = _BATCH_ABORT
            return outcomes
        host = host_info()
        for lane, k in enumerate(lane_jobs):
            job = jobs[k]
            attempt = attempts[k]
            result = lane_results[lane]
            if isinstance(result, Exception):
                outcomes[k] = SweepError(
                    kind="exception",
                    error_type=type(result).__name__,
                    message=str(result),
                    traceback="".join(
                        traceback_mod.format_exception(
                            type(result), result, result.__traceback__
                        )
                    ),
                    attempts=attempt,
                )
                continue
            workload, config = lane_items[lane]
            payload = SweepPayload.from_result(job.payload, result, lane_probes[lane])
            engine_name = resolve_engine(workload, config, _WORKER_ENGINE)
            if engine_name == "fast" and batch_supported(config, workload.attestation):
                engine_name = "batch"
            # ``batched`` marks lanes that actually ran in lockstep;
            # ineligible lanes fell back to solo simulate() inside the
            # batch unit and report False like any single job.
            record = SweepRecord.from_result(
                job, result, payload, batched=engine_name == "batch"
            )
            manifest = {
                "schema": MANIFEST_SCHEMA,
                "engine": engine_name,
                "host": host,
                "timings": {
                    "workload_build_s": round(lane_builds[lane], 6),
                    "run_s": round(result.wall_time_s, 6),
                },
                "execution": {
                    "attempt": attempt,
                    "batch_lanes": len(jobs),
                    "batch_lane": k,
                },
            }
            outcomes[k] = (record, manifest)
        # The batch shares one registry, so its delta (and any buffered
        # warnings) ride exactly one lane's manifest — the first that
        # succeeded. A fully failed batch keeps warnings buffered for
        # the worker's next outcome.
        carrier = next((o for o in outcomes if isinstance(o, tuple)), None)
        if carrier is not None:
            _attach_piggyback(carrier[1], registry)
        return outcomes
    finally:
        _end_collection(registry, previous, heartbeat)


#: SweepRecord fields persisted by the result cache as plain scalars
#: (the job is supplied by the caller on a hit; the payload has its own
#: JSON encoding; errors are excluded because failed records are never
#: cached — including the field would also invalidate every pre-error
#: cache entry via the all-fields-present check below; ``batched`` is
#: execution metadata, not a result, and caching it would make batch
#: and solo runs write different entries for the same (spec, config)).
_RESULT_FIELDS = tuple(
    f.name
    for f in fields(SweepRecord)
    if f.name not in ("job", "payload", "error", "batched")
)

#: spec params that scale simulated work, for the scheduling cost hint
_SIZE_PARAM_KEYS = ("n", "length", "repeats", "vertices", "iters")


def _record_payload(record: SweepRecord) -> dict[str, Any]:
    entry = {name: getattr(record, name) for name in _RESULT_FIELDS}
    if record.payload is not None:
        entry["payload"] = record.payload.to_json_dict()
    return entry


def _record_from_payload(job: SweepJob, payload: dict[str, Any]) -> SweepRecord | None:
    if not all(name in payload for name in _RESULT_FIELDS):
        return None  # written by an older schema; treat as a miss
    values = {name: payload[name] for name in _RESULT_FIELDS}
    if job.payload:
        # A fat job must replay a fat entry. The payload request is part
        # of the cache key, so a missing payload here means corruption
        # or a hand-edited entry — recompute rather than degrade.
        stored = payload.get("payload")
        if stored is None:
            return None
        values["payload"] = SweepPayload.from_json_dict(stored)
    # A replayed record is marked cached regardless of what was stored:
    # wall_time_s is the *original* simulation time, not this replay's.
    values["cached"] = True
    return SweepRecord(job=job, **values)


def _job_cost_hint(job: SweepJob) -> float:
    """Crude relative runtime estimate, used only to order pool submits.

    Longest-job-first keeps a big job from landing on a worker after
    the queue has drained; a wrong hint costs nothing but scheduling
    quality.
    """
    params = dict(job.workload.params)
    size = 1.0
    for key in _SIZE_PARAM_KEYS:
        value = params.get(key)
        if isinstance(value, (int, float)) and value > 1:
            size *= float(value)
    return job.workload.threads * size


@dataclass
class CampaignStats:
    """Telemetry for one :meth:`SweepRunner.run` invocation.

    ``wall_time_s`` is this campaign's wall clock; ``sim_time_s`` sums
    only *fresh* records' simulation time (cache hits replay the
    original ``wall_time_s``, which must not be double-counted — see
    :attr:`SweepRecord.cached`).

    The fault-tolerance counters:

    * ``failed`` — jobs that exhausted their retries and produced a
      failed record (``keep_going`` mode only; ``strict`` raises);
    * ``retried`` — individual retry attempts performed (a job that
      succeeded on its third attempt contributes 2);
    * ``recovered`` — in-flight jobs resubmitted after their worker
      process died (``BrokenProcessPool``);
    * ``pool_rebuilds`` — process-pool reconstructions this campaign.

    The campaign-durability counters (all zero/empty for a single-life,
    unsharded run, keeping its digest byte-identical to before):

    * ``resumed`` — cache hits that a previous life of *this* campaign
      had already marked done in the store frontier;
    * ``skipped`` — partition jobs another process held a live lease on
      (sharded runs only; they produce no record here);
    * ``shard`` — this process's ``"i/n"`` designator, if sharded;
    * ``campaign_id``/``store`` — durable identity for provenance.
    """

    total_jobs: int = 0
    cache_hits: int = 0
    simulated: int = 0
    failed: int = 0
    retried: int = 0
    recovered: int = 0
    pool_rebuilds: int = 0
    resumed: int = 0
    skipped: int = 0
    shard: str = ""
    campaign_id: str = ""
    store: str = ""
    wall_time_s: float = 0.0
    sim_time_s: float = 0.0
    #: (workload kind, arbitration policy) ->
    #: {jobs, cached, failed, sim_wall_s}
    by_group: dict[tuple[str, str], dict[str, Any]] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0

    @classmethod
    def collect(
        cls,
        records: Sequence["SweepRecord"],
        wall_time_s: float,
        retried: int = 0,
        recovered: int = 0,
        pool_rebuilds: int = 0,
        resumed: int = 0,
        skipped: int = 0,
        shard: str = "",
        campaign_id: str = "",
        store: str = "",
    ) -> "CampaignStats":
        stats = cls(
            total_jobs=len(records),
            wall_time_s=wall_time_s,
            retried=retried,
            recovered=recovered,
            pool_rebuilds=pool_rebuilds,
            resumed=resumed,
            skipped=skipped,
            shard=shard,
            campaign_id=campaign_id,
            store=store,
        )
        for record in records:
            key = (record.job.workload.kind, record.job.config.arbitration)
            group = stats.by_group.setdefault(
                key, {"jobs": 0, "cached": 0, "failed": 0, "sim_wall_s": 0.0}
            )
            group["jobs"] += 1
            if record.failed:
                stats.failed += 1
                group["failed"] += 1
            elif record.cached:
                stats.cache_hits += 1
                group["cached"] += 1
            else:
                stats.simulated += 1
                stats.sim_time_s += record.wall_time_s
                group["sim_wall_s"] += record.wall_time_s
        return stats

    def summary_table(self) -> str:
        """Wall-time-by-(kind, policy) campaign digest.

        The failure column and counters appear only when something
        actually failed or retried, so a healthy campaign's digest is
        unchanged from the pre-fault-tolerance format.
        """
        from .tables import format_table

        show_failures = bool(self.failed)
        rows: list[dict[str, Any]] = []
        for (kind, arb), group in sorted(self.by_group.items()):
            row = {
                "workload": kind,
                "arbitration": arb,
                "jobs": group["jobs"],
                "cached": group["cached"],
                "sim_wall_s": round(group["sim_wall_s"], 4),
            }
            if show_failures:
                row["failed"] = group.get("failed", 0)
            rows.append(row)
        total = {
            "workload": "TOTAL",
            "arbitration": "",
            "jobs": self.total_jobs,
            "cached": self.cache_hits,
            "sim_wall_s": round(self.sim_time_s, 4),
        }
        if show_failures:
            total["failed"] = self.failed
        rows.append(total)
        title = (
            f"campaign: {self.total_jobs} jobs, {self.cache_hits} cache hits "
            f"({self.cache_hit_rate:.0%}), wall {self.wall_time_s:.2f}s "
            f"(simulation {self.sim_time_s:.2f}s)"
        )
        if self.shard:
            title += f" [shard {self.shard}]"
        if self.resumed or self.skipped:
            title += f" [{self.resumed} resumed, {self.skipped} skipped]"
        if self.failed or self.retried or self.recovered:
            title += (
                f" [{self.failed} failed, {self.retried} retried, "
                f"{self.recovered} recovered, "
                f"{self.pool_rebuilds} pool rebuilds]"
            )
        return format_table(rows, title=title)


_RESULT_CACHE_DEFAULT = True


def set_result_cache_default(enabled: bool) -> bool:
    """Set the process-wide result-cache default; returns the old value.

    Used by the CLI's ``--no-result-cache`` flag; individual runners can
    still override via their ``result_cache`` argument.
    """
    global _RESULT_CACHE_DEFAULT
    previous = _RESULT_CACHE_DEFAULT
    _RESULT_CACHE_DEFAULT = bool(enabled)
    return previous


class SweepRunner:
    """Executes sweep jobs, optionally across a process pool.

    ``processes=None`` picks ``os.cpu_count()``; ``processes<=1`` runs
    sequentially in-process (useful under pytest and for debugging).

    ``engine`` selects the simulator per job (``"auto"`` /
    ``"reference"`` / ``"fast"``; ``None`` uses the process default from
    :func:`repro.core.fastengine.set_default_engine`).

    When ``cache_dir`` is given and ``result_cache`` is enabled (the
    default, see :func:`set_result_cache_default`), finished records
    are persisted under ``<cache_dir>/results/`` and re-running a job
    list replays hits from disk without touching any engine.

    Campaign telemetry flows through the ``repro.sweep`` logger (INFO:
    start/summary, DEBUG: per-job completions) and the
    :class:`CampaignStats` left in :attr:`last_campaign` after each
    :meth:`run`.

    Fault tolerance (defaults from :func:`set_execution_defaults`):

    ``retries``
        Retry attempts per job after its first failure (exponential
        backoff starting at ``retry_backoff_s``).
    ``job_timeout``
        Per-attempt deadline in seconds (``None``/``<=0`` disables);
        an overrun fails the attempt with a ``"timeout"`` error.
    ``failure_mode``
        ``"keep_going"`` (default) turns a permanently failed job into
        a failed :class:`SweepRecord` and finishes the campaign;
        ``"strict"`` raises :class:`SweepFailure` at the first
        permanent failure (records stored so far stay in the result
        cache, so a fixed re-run only repeats the unfinished jobs).

    A dead worker process (``BrokenProcessPool``) never aborts the
    campaign: the pool is rebuilt and only the jobs whose futures were
    lost are resubmitted, up to ``max_pool_rebuilds`` times.

    Cache-miss jobs whose configs are batch-eligible (see
    :func:`repro.core.batch_supported`) are grouped into lockstep
    batch units of up to :func:`repro.core.batch_limit` lanes before
    submission; grouping respects the longest-job-first cost order,
    records and cache writes are identical to solo execution, and any
    lane that fails inside a batch is retried as a single job.
    """

    def __init__(
        self,
        processes: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        engine: str | None = None,
        result_cache: bool | None = None,
        retries: int | None = None,
        job_timeout: float | None = None,
        failure_mode: str | None = None,
        retry_backoff_s: float | None = None,
        max_pool_rebuilds: int | None = None,
        telemetry: CampaignTelemetry | None = None,
        store: "ResultStore | str | None" = None,
        shard: str | tuple[int, int] | None = None,
    ) -> None:
        self.processes = processes if processes is not None else (os.cpu_count() or 1)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.engine = engine if engine is not None else default_engine()
        self.result_cache = (
            result_cache if result_cache is not None else _RESULT_CACHE_DEFAULT
        )
        #: explicit result-store target (instance or URI); ``None``
        #: resolves ``--store``/``REPRO_STORE``, then ``cache_dir``
        self.store = store
        self.shard = parse_shard(
            shard if shard is not None else _EXECUTION_DEFAULTS["shard"]
        )
        defaults = _EXECUTION_DEFAULTS
        self.retries = int(retries) if retries is not None else defaults["retries"]
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        self.job_timeout = (
            float(job_timeout) if job_timeout is not None else defaults["job_timeout"]
        )
        self.failure_mode = (
            failure_mode if failure_mode is not None else defaults["failure_mode"]
        )
        if self.failure_mode not in _FAILURE_MODES:
            raise ValueError(
                f"failure_mode must be one of {_FAILURE_MODES}, "
                f"got {self.failure_mode!r}"
            )
        self.retry_backoff_s = (
            float(retry_backoff_s)
            if retry_backoff_s is not None
            else defaults["retry_backoff_s"]
        )
        self.max_pool_rebuilds = (
            int(max_pool_rebuilds)
            if max_pool_rebuilds is not None
            else defaults["max_pool_rebuilds"]
        )
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        #: explicit telemetry sink; ``None`` resolves the process-wide
        #: default (see :func:`repro.analysis.telemetry.default_telemetry`)
        #: at each :meth:`run`
        self.telemetry = telemetry
        #: the sink actually driving the campaign in flight (internal)
        self._tele: CampaignTelemetry | None = None
        #: telemetry from the most recent :meth:`run`
        self.last_campaign: CampaignStats | None = None

    def prepare(self, jobs: Sequence[SweepJob]) -> None:
        """Warm the workload cache: generate each distinct spec once."""
        if self.cache_dir is None:
            return
        cache = WorkloadCache(self.cache_dir)
        specs = dict.fromkeys(job.workload for job in jobs)
        log.debug("warming workload cache: %d distinct specs", len(specs))
        for spec in specs:
            spec.build(cache)

    def _open_store(self) -> ResultStore | None:
        """Resolve the result store this campaign runs against.

        Order: the runner's explicit ``store`` argument, then the
        process default URI (CLI ``--store`` / ``REPRO_STORE``), then
        the historical ``<cache_dir>/results`` directory backend.
        ``result_cache=False`` disables all of it.
        """
        if not self.result_cache:
            return None
        if self.store is not None:
            return open_store(self.store)
        uri = default_store_uri()
        if uri is not None:
            return open_store(uri)
        if self.cache_dir is None:
            return None
        return DirectoryStore(Path(self.cache_dir) / "results")

    # kept for callers/tests that knew the pre-store name
    _result_cache = _open_store

    def run(
        self,
        jobs: Sequence[SweepJob],
        label: str = "",
        on_record: Any = None,
        meta: Mapping[str, Any] | None = None,
    ) -> list[SweepRecord]:
        """Execute ``jobs``, returning one record per job.

        ``on_record`` is an optional callable invoked with each
        :class:`SweepRecord` as it lands (cache hits first, then
        completions in finish order) — the hook :meth:`stream` and
        :meth:`astream` are built on. ``meta`` is stored in the campaign
        checkpoint for resuming processes (the CLI records the
        experiment id, scale, and seed there).

        In shard mode the returned list covers only this shard's
        partition of the job list (plus none of the jobs another live
        process holds a lease on); an unsharded run always returns all
        jobs, in job-list order.
        """
        if not jobs:
            self.last_campaign = CampaignStats()
            return []
        tele = self.telemetry if self.telemetry is not None else default_telemetry()
        self._tele = tele
        # The campaign registry doubles as the parent's active phase
        # sink: runner phases (cache_probe, batch_form) and — on the
        # sequential path — engine phases record straight into it.
        previous_registry = (
            set_active_registry(tele.registry) if tele is not None else None
        )
        try:
            return self._run_campaign(jobs, label, tele, on_record, meta)
        finally:
            if tele is not None:
                set_active_registry(previous_registry)
            self._tele = None

    def stream(
        self,
        jobs: Sequence[SweepJob],
        label: str = "",
        meta: Mapping[str, Any] | None = None,
    ) -> Iterator[SweepRecord]:
        """Yield records as they land instead of waiting for the end.

        The campaign runs in a background thread; cache hits arrive
        first, then fresh completions in finish order. The generator
        re-raises any campaign failure (e.g. :class:`SweepFailure` in
        strict mode) after draining the records that preceded it.
        ``last_campaign`` is populated once the stream is exhausted.
        """
        out: queue.Queue[Any] = queue.Queue()
        sentinel = object()
        failure: list[BaseException] = []

        def _drive() -> None:
            try:
                self.run(jobs, label=label, on_record=out.put, meta=meta)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                failure.append(exc)
            finally:
                out.put(sentinel)

        thread = threading.Thread(
            target=_drive, name="sweep-stream", daemon=True
        )
        thread.start()
        try:
            while True:
                item = out.get()
                if item is sentinel:
                    break
                yield item
        finally:
            thread.join()
            if failure:
                raise failure[0]

    async def arun(
        self,
        jobs: Sequence[SweepJob],
        label: str = "",
        meta: Mapping[str, Any] | None = None,
    ) -> list[SweepRecord]:
        """Async :meth:`run`: await the campaign without blocking the
        event loop (execution itself stays in worker processes)."""
        return await asyncio.to_thread(self.run, jobs, label, None, meta)

    async def astream(
        self,
        jobs: Sequence[SweepJob],
        label: str = "",
        meta: Mapping[str, Any] | None = None,
    ) -> Any:
        """Async :meth:`stream`: ``async for record in runner.astream(...)``."""
        records = self.stream(jobs, label=label, meta=meta)
        sentinel = object()
        while True:
            item = await asyncio.to_thread(next, records, sentinel)
            if item is sentinel:
                return
            yield item

    def _run_campaign(
        self,
        jobs: Sequence[SweepJob],
        label: str,
        tele: CampaignTelemetry | None,
        on_record: Any = None,
        meta: Mapping[str, Any] | None = None,
    ) -> list[SweepRecord]:
        campaign_start = time.perf_counter()
        cache = self._open_store()
        shard = self.shard
        if shard is not None and cache is None:
            raise ValueError(
                "sharded execution needs a result store: give the runner "
                "a store/cache_dir (or unset shard)"
            )
        records: list[SweepRecord | None] = [None] * len(jobs)
        keys: list[str | None] = [None] * len(jobs)
        pending: list[int] = []
        with phase("cache_probe"):
            if cache is not None:
                for idx, job in enumerate(jobs):
                    keys[idx] = sweep_result_key(
                        job.workload, job.config, job.payload
                    )
                found = cache.get_many(keys)  # type: ignore[arg-type]
                for idx, job in enumerate(jobs):
                    payload = found.get(keys[idx])
                    if payload is not None:
                        record = _record_from_payload(job, payload)
                        if record is not None:
                            records[idx] = record
                            continue
                    pending.append(idx)
            else:
                pending = list(range(len(jobs)))

        # -- campaign identity, frontier, and shard claiming ------------
        # With a store, every campaign is durable: a write-once manifest
        # pins the job list and an append-only frontier records each
        # completed key, so a killed parent resumes and N shards
        # coordinate. campaign_id stays "" when there is no store, which
        # disables all of it.
        campaign_id = ""
        prior_done: set[str] = set()
        resumed = 0
        skipped = 0
        if cache is not None:
            campaign_id = campaign_id_for(label or "sweep", keys)  # type: ignore[arg-type]
            existing = cache.load_checkpoint(campaign_id)
            if existing is not None and existing.job_keys != set(keys):
                log.warning(
                    "campaign %s exists with a different job set; "
                    "running without checkpointing",
                    campaign_id,
                )
                campaign_id = ""
            else:
                if existing is None:
                    cache.save_checkpoint(
                        CampaignCheckpoint(
                            campaign_id=campaign_id,
                            label=label or "sweep",
                            created_at=time.strftime(
                                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                            ),
                            jobs=tuple(
                                {**sweep_job_to_dict(job), "key": keys[idx]}
                                for idx, job in enumerate(jobs)
                            ),
                            meta=dict(meta or {}),
                        )
                    )
                else:
                    prior_done = cache.done_keys(campaign_id) & set(keys)

        visible = (
            [
                idx
                for idx in range(len(jobs))
                if int(keys[idx], 16) % shard[1] == shard[0]  # type: ignore[index]
            ]
            if shard is not None
            else list(range(len(jobs)))
        )
        if shard is not None:
            mine = set(visible)
            claimed: list[int] = []
            for idx in pending:
                if idx not in mine:
                    continue
                # A done-but-cache-missed key (entry cleared or
                # quarantined after the frontier recorded it) must still
                # re-run; claim() refuses done keys, so bypass the lease
                # — a duplicate simulation is harmless, a hole is not.
                if keys[idx] in prior_done or cache.claim(campaign_id, keys[idx]):
                    claimed.append(idx)
                else:
                    skipped += 1
            pending = claimed
        # A *resumed* hit is one a previous life of this campaign marked
        # done while work was still pending; a re-run of a campaign that
        # already completed is a plain replay (resumed stays 0), keeping
        # warm-run digests identical to the pre-checkpoint format.
        if prior_done and not prior_done >= {keys[idx] for idx in visible}:
            resumed = sum(
                1
                for idx in visible
                if records[idx] is not None and keys[idx] in prior_done
            )
        if campaign_id:
            # Record replayed hits in the frontier too, so a later kill
            # -and-resume of this life knows they need no re-simulation.
            for idx in visible:
                if records[idx] is not None and keys[idx] not in prior_done:
                    cache.mark_done(campaign_id, keys[idx])

        hits = sum(1 for idx in visible if records[idx] is not None)
        shard_str = f"{shard[0]}/{shard[1]}" if shard is not None else ""
        if tele is not None:
            tele.campaign_start(
                label or "sweep",
                total=len(visible),
                cache_hits=hits,
                pending=len(pending),
                engine=self.engine,
                processes=self.processes,
                resumed=resumed,
                shard=shard_str,
            )
        log.info(
            "campaign start: %d jobs (%d cache hits, %d to simulate) "
            "engine=%s processes=%d cache=%s",
            len(visible),
            hits,
            len(pending),
            self.engine,
            self.processes,
            "off" if cache is None else "on",
        )
        if campaign_id and (resumed or shard is not None):
            log.info(
                "campaign %s on %s: resumed=%d shard=%s skipped=%d",
                campaign_id,
                cache.describe(),
                resumed,
                shard_str or "-",
                skipped,
            )
        if cache is not None and log.isEnabledFor(10):  # DEBUG
            cache_stats = cache.stats()
            log.debug(
                "result store %s: %d entries, %d bytes",
                cache.describe(),
                cache_stats["entries"],
                cache_stats["bytes"],
            )
        if on_record is not None:
            for idx in visible:
                if records[idx] is not None:
                    on_record(records[idx])

        def _store(idx: int, record: SweepRecord, manifest: dict[str, Any]) -> None:
            # The piggybacked telemetry rides transient manifest keys;
            # pop them unconditionally and BEFORE the cache write, so a
            # cache entry is byte-identical with telemetry on or off
            # (and identical to the pre-telemetry entry format).
            worker_metrics = manifest.pop("metrics", None)
            forwarded = forward_warnings(manifest.pop("warnings", []))
            records[idx] = record
            # Failed records never reach the cache: a later fault-free
            # run must re-simulate them, not replay the failure.
            if (
                cache is not None
                and keys[idx] is not None
                and not record.failed
            ):
                cache.put(
                    keys[idx], {**_record_payload(record), "manifest": manifest}
                )
                if campaign_id:
                    cache.mark_done(campaign_id, keys[idx])
                    if shard is not None:
                        cache.release(campaign_id, keys[idx])
            if tele is not None:
                tele.job_done(record, worker_metrics, forwarded)
            if on_record is not None:
                on_record(record)
            # Fault-injection point: the parent dies only after the
            # record is durably stored and marked done, which is the
            # contract resume relies on (see docs/ROBUSTNESS.md).
            maybe_inject_parent(jobs[idx].tag)

        def _progress(done: int, idx: int, record: SweepRecord) -> None:
            job = jobs[idx]
            log.debug(
                "job %d/%d done: %s x %s/%s makespan=%d wall=%.3fs",
                done,
                len(pending),
                job.workload.kind,
                job.config.arbitration,
                job.config.replacement,
                record.makespan,
                record.wall_time_s,
            )

        #: retry attempts / lost-worker resubmissions / pool rebuilds
        counters = {"retried": 0, "recovered": 0, "rebuilds": 0}

        def _fail(idx: int, error: SweepError) -> None:
            job = jobs[idx]
            if self.failure_mode == "strict":
                raise SweepFailure(job, error)
            log.warning(
                "job failed permanently: tag=%r %s x %s/%s — %s",
                job.tag,
                job.workload.kind,
                job.config.arbitration,
                job.config.replacement,
                error.describe(),
            )
            records[idx] = SweepRecord.from_error(job, error)
            # Failed jobs are never marked done — a resume re-runs them
            # — and their lease is dropped so another shard's stale-
            # lease takeover isn't needed to retry.
            if campaign_id and shard is not None:
                cache.release(campaign_id, keys[idx])
            if tele is not None:
                tele.job_done(records[idx])
            if on_record is not None:
                on_record(records[idx])

        if pending:
            if self.processes <= 1 or len(pending) == 1:
                self._run_sequential(
                    jobs, pending, _store, _progress, _fail, counters
                )
            else:
                self.prepare([jobs[idx] for idx in pending])
                # Longest-job-first: order submissions by the cost hint
                # so stragglers start early instead of serializing the
                # tail once the queue drains.
                order = sorted(
                    pending, key=lambda idx: _job_cost_hint(jobs[idx]), reverse=True
                )
                self._run_pool(jobs, order, _store, _progress, _fail, counters)

        # Unsharded, every visible slot is filled; in shard mode, jobs
        # another live process holds a lease on stay None and are
        # dropped (they are that process's records, not ours).
        out = [records[idx] for idx in visible if records[idx] is not None]
        stats = CampaignStats.collect(
            out,
            wall_time_s=time.perf_counter() - campaign_start,
            retried=counters["retried"],
            recovered=counters["recovered"],
            pool_rebuilds=counters["rebuilds"],
            resumed=resumed,
            skipped=skipped,
            shard=shard_str,
            campaign_id=campaign_id,
            store=cache.describe() if cache is not None else "",
        )
        self.last_campaign = stats
        if tele is not None:
            tele.campaign_end(stats)
        log.info("%s", stats.summary_table())
        return out

    def _backoff_s(self, attempt: int) -> float:
        """Delay before retrying after a failed ``attempt`` (1-based)."""
        return self.retry_backoff_s * (2 ** (attempt - 1))

    def _log_retry(self, job: SweepJob, error: SweepError, delay: float) -> None:
        log.warning(
            "job attempt %d/%d failed (tag=%r %s x %s): %s: %s — "
            "retrying in %.2fs",
            error.attempts,
            self.retries + 1,
            job.tag,
            job.workload.kind,
            job.config.arbitration,
            error.error_type,
            error.message,
            delay,
        )

    def _batch_plan(self, jobs: Sequence[SweepJob], order: Sequence[int]) -> list[list[int]]:
        """Group consecutive batch-eligible jobs into submission units.

        Walks ``order`` — already cost-sorted for the pool path, so
        longest-job-first submission is preserved — chunking runs of
        eligible jobs (see :func:`repro.core.batchengine.batch_supported`)
        up to the batch lane cap. Ineligible jobs stay single, and the
        retry path never re-batches: a failed lane always comes back as
        a solo job, where every fault-tolerance semantic is the proven
        single-job path.
        """
        limit = batch_limit()
        if limit < 2 or self.engine == "reference":
            return [[idx] for idx in order]
        units: list[list[int]] = []
        run: list[int] = []
        for idx in order:
            if batch_supported(jobs[idx].config):
                run.append(idx)
                if len(run) == limit:
                    units.append(run)
                    run = []
            else:
                if run:
                    units.append(run)
                    run = []
                units.append([idx])
        if run:
            units.append(run)
        return units

    def _run_sequential(
        self,
        jobs: Sequence[SweepJob],
        pending: Sequence[int],
        _store: Any,
        _progress: Any,
        _fail: Any,
        counters: dict[str, int],
    ) -> None:
        """In-process execution with the same retry semantics as the pool."""
        _pool_init(self.cache_dir, self.engine)
        max_attempts = self.retries + 1
        done = 0

        def _complete(idx: int, record: SweepRecord, manifest: dict[str, Any]) -> None:
            nonlocal done
            done += 1
            _store(idx, record, manifest)
            _progress(done, idx, record)

        def _retry_solo(idx: int, error: SweepError) -> None:
            """Retry a failed first attempt as a solo job until resolved."""
            attempt = 1
            outcome: Any = error
            while True:
                if attempt >= max_attempts:
                    _fail(idx, outcome)
                    return
                counters["retried"] += 1
                if self._tele is not None:
                    self._tele.job_retried()
                delay = self._backoff_s(attempt)
                self._log_retry(jobs[idx], outcome, delay)
                time.sleep(delay)
                attempt += 1
                outcome = _run_job(jobs[idx], attempt, self.job_timeout)
                if not isinstance(outcome, SweepError):
                    record, manifest = outcome
                    _complete(idx, record, manifest)
                    return

        with phase("batch_form"):
            units = self._batch_plan(jobs, pending)
        for unit in units:
            if len(unit) == 1:
                outcomes: list[Any] = [_run_job(jobs[unit[0]], 1, self.job_timeout)]
            else:
                outcomes = _run_batch(
                    [jobs[idx] for idx in unit], [1] * len(unit), self.job_timeout
                )
            for idx, outcome in zip(unit, outcomes):
                if isinstance(outcome, _BatchAbort):
                    # Shared-deadline overrun: rerun solo at the same
                    # attempt so the batch abort costs no retry budget.
                    outcome = _run_job(jobs[idx], 1, self.job_timeout)
                if isinstance(outcome, SweepError):
                    _retry_solo(idx, outcome)
                else:
                    record, manifest = outcome
                    _complete(idx, record, manifest)

    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_init,
            initargs=(
                self.cache_dir,
                self.engine,
                self._tele.spool_dir if self._tele is not None else None,
                True,
            ),
        )

    def _run_pool(
        self,
        jobs: Sequence[SweepJob],
        order: Sequence[int],
        _store: Any,
        _progress: Any,
        _fail: Any,
        counters: dict[str, int],
    ) -> None:
        """Pool execution loop with retries and broken-pool recovery.

        State: ``futures`` maps each in-flight future to the list of
        ``(job index, attempt)`` entries riding on it — one entry for a
        solo submission, one per lane for a batched one; ``retry_heap``
        holds ``(ready_time, index, attempt)`` for jobs waiting out
        their backoff (retries are always solo). A ``BrokenProcessPool``
        (worker OOM-killed or died on a signal) marks every unfinished
        future's entries as *lost*, rebuilds the pool, and resubmits
        exactly those jobs solo — completed futures keep their results
        and are drained normally, and records already stored are
        untouched, so nothing finished is ever re-run.
        """
        with phase("batch_form"):
            units = self._batch_plan(jobs, order)
        workers = min(self.processes, len(units))
        max_attempts = self.retries + 1
        pool = self._make_pool(workers)
        futures: dict[Any, list[tuple[int, int]]] = {}
        retry_heap: list[tuple[float, int, int]] = []
        done_count = 0
        lost: list[tuple[int, int]] = []

        def _submit(idx: int, attempt: int) -> None:
            try:
                future = pool.submit(_run_job, jobs[idx], attempt, self.job_timeout)
            except (BrokenProcessPool, RuntimeError):
                # Pool already broken (or shut down by breakage); the
                # rebuild pass below picks this job up with the rest.
                lost.append((idx, attempt))
            else:
                futures[future] = [(idx, attempt)]

        def _submit_batch(unit: Sequence[int]) -> None:
            entries = [(idx, 1) for idx in unit]
            try:
                future = pool.submit(
                    _run_batch,
                    [jobs[idx] for idx in unit],
                    [1] * len(unit),
                    self.job_timeout,
                )
            except (BrokenProcessPool, RuntimeError):
                lost.extend(entries)
            else:
                futures[future] = entries

        def _handle(idx: int, attempt: int, outcome: Any) -> None:
            nonlocal done_count
            if isinstance(outcome, _BatchAbort):
                # Shared-deadline overrun: resubmit solo at the same
                # attempt so the batch abort costs no retry budget.
                _submit(idx, attempt)
                return
            if isinstance(outcome, SweepError):
                if attempt >= max_attempts:
                    _fail(idx, outcome)
                    return
                counters["retried"] += 1
                if self._tele is not None:
                    self._tele.job_retried()
                delay = self._backoff_s(attempt)
                self._log_retry(jobs[idx], outcome, delay)
                heapq.heappush(
                    retry_heap, (time.monotonic() + delay, idx, attempt + 1)
                )
            else:
                record, manifest = outcome
                done_count += 1
                _store(idx, record, manifest)
                _progress(done_count, idx, record)

        def _drain_broken_pool() -> None:
            """Sort surviving results from lost jobs after pool death."""
            nonlocal pool
            for future, entries in list(futures.items()):
                try:
                    # Completed futures keep their results even after
                    # the pool dies; unfinished ones are flagged
                    # broken by the executor almost immediately. The
                    # timeout is a belt-and-braces bound, not a wait
                    # we expect to consume.
                    outcome = future.result(timeout=60)
                except Exception:
                    lost.extend(entries)
                else:
                    if len(entries) == 1:
                        outcome = [outcome]
                    for (idx, attempt), lane_outcome in zip(entries, outcome):
                        _handle(idx, attempt, lane_outcome)
            futures.clear()
            pool.shutdown(wait=False)
            counters["rebuilds"] += 1
            if self._tele is not None:
                self._tele.pool_rebuilt()
            if counters["rebuilds"] > self.max_pool_rebuilds:
                log.error(
                    "process pool died %d times; failing %d unrecovered jobs",
                    counters["rebuilds"],
                    len(lost),
                )
                for idx, attempt in lost:
                    _fail(
                        idx,
                        SweepError(
                            kind="worker-lost",
                            error_type="BrokenProcessPool",
                            message=(
                                "worker process died and the pool-rebuild "
                                f"budget ({self.max_pool_rebuilds}) is exhausted"
                            ),
                            attempts=attempt,
                        ),
                    )
                lost.clear()
                return
            log.warning(
                "worker process died; rebuilding pool (%d/%d) and "
                "resubmitting %d lost jobs",
                counters["rebuilds"],
                self.max_pool_rebuilds,
                len(lost),
            )
            pool = self._make_pool(workers)
            counters["recovered"] += len(lost)
            if self._tele is not None:
                self._tele.jobs_recovered(len(lost))
            # Bump the attempt so an attempt-gated kill fault (and any
            # real first-attempt-only crash) clears on resubmission;
            # repeated pool deaths are bounded by the rebuild budget
            # above, not the per-job retry budget.
            resubmit = [(idx, attempt + 1) for idx, attempt in lost]
            lost.clear()
            for idx, attempt in resubmit:
                _submit(idx, attempt)

        try:
            for unit in units:
                if len(unit) == 1:
                    _submit(unit[0], 1)
                else:
                    _submit_batch(unit)
            while futures or retry_heap or lost:
                if lost:
                    _drain_broken_pool()
                    continue
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, idx, attempt = heapq.heappop(retry_heap)
                    _submit(idx, attempt)
                if lost:
                    continue
                if not futures:
                    if retry_heap:
                        time.sleep(max(0.0, retry_heap[0][0] - time.monotonic()))
                    continue
                timeout = (
                    max(0.0, retry_heap[0][0] - time.monotonic())
                    if retry_heap
                    else None
                )
                if self._tele is not None:
                    # Wake at least once a second so the live status
                    # line and heartbeat view stay fresh while workers
                    # grind through long jobs.
                    timeout = 1.0 if timeout is None else min(timeout, 1.0)
                finished, _ = wait(
                    set(futures), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if self._tele is not None:
                    self._tele.tick()
                broken = False
                for future in finished:
                    entries = futures.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        lost.extend(entries)
                        broken = True
                        break
                    except Exception as exc:
                        # Result-transport failures (e.g. unpicklable
                        # payload) count against each job's retries.
                        outcome = [
                            SweepError(
                                kind="exception",
                                error_type=type(exc).__name__,
                                message=str(exc),
                                attempts=attempt,
                            )
                            for _, attempt in entries
                        ]
                    else:
                        if len(entries) == 1:
                            outcome = [outcome]
                    for (idx, attempt), lane_outcome in zip(entries, outcome):
                        _handle(idx, attempt, lane_outcome)
                if broken:
                    _drain_broken_pool()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def run_sweep(
    jobs: Sequence[SweepJob],
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    engine: str | None = None,
    result_cache: bool | None = None,
    retries: int | None = None,
    job_timeout: float | None = None,
    failure_mode: str | None = None,
    retry_backoff_s: float | None = None,
    max_pool_rebuilds: int | None = None,
) -> list[SweepRecord]:
    """One-call sweep execution."""
    return SweepRunner(
        processes=processes,
        cache_dir=cache_dir,
        engine=engine,
        result_cache=result_cache,
        retries=retries,
        job_timeout=job_timeout,
        failure_mode=failure_mode,
        retry_backoff_s=retry_backoff_s,
        max_pool_rebuilds=max_pool_rebuilds,
    ).run(jobs)
