"""Parameter-sweep harness (paper section 1.2's experimental grid).

The paper varies: HBM size, trace source, core count, work
distribution, permutation scheme, remap period, channel count, and
queue policy. A sweep here is a list of :class:`SweepJob` s — each names
a workload *by generator spec* (kind, threads, seed, params) plus a
:class:`~repro.core.SimulationConfig` — executed across worker
processes. Jobs carry specs rather than trace arrays so that workers
regenerate (or cache-load) workloads locally instead of pickling
multi-megabyte traces through the pool; the disk cache is warmed in the
parent first so each expensive instrumented workload is generated
exactly once.

Two further levers make repeated campaigns cheap:

* a persistent **result cache** (:mod:`repro.analysis.resultcache`):
  records are pure functions of (spec, config), so a re-run only
  simulates jobs never seen before (enabled whenever ``cache_dir`` is
  given; disable with ``result_cache=False``);
* **longest-job-first scheduling**: pool submissions are ordered by a
  crude cost hint so one straggler at the end of the job list no
  longer serializes the tail of the campaign.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Sequence

from ..core import SimulationConfig, SimulationResult
from ..core.fastengine import default_engine, simulate
from ..traces import Workload, WorkloadCache, make_workload
from .resultcache import ResultCache, sweep_result_key

__all__ = [
    "WorkloadSpec",
    "SweepJob",
    "SweepRecord",
    "SweepRunner",
    "run_sweep",
    "set_result_cache_default",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Pickle-friendly recipe for a workload."""

    kind: str
    threads: int
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, threads: int, seed: int = 0, **params: Any) -> "WorkloadSpec":
        return cls(kind, threads, seed, tuple(sorted(params.items())))

    def build(self, cache: WorkloadCache | None = None) -> Workload:
        params = dict(self.params)
        if cache is not None:
            return cache.get(self.kind, self.threads, seed=self.seed, **params)
        return make_workload(self.kind, self.threads, seed=self.seed, **params)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}(threads={self.threads}, seed={self.seed}, {inner})"


@dataclass(frozen=True)
class SweepJob:
    """One simulation to run: a workload spec plus a config."""

    workload: WorkloadSpec
    config: SimulationConfig
    tag: str = ""


@dataclass(frozen=True)
class SweepRecord:
    """Flattened outcome of one job (CSV/table-friendly)."""

    job: SweepJob
    makespan: int
    mean_response: float
    inconsistency: float
    max_response: int
    hit_rate: float
    total_requests: int
    fetches: int
    evictions: int
    wall_time_s: float

    @classmethod
    def from_result(cls, job: SweepJob, result: SimulationResult) -> "SweepRecord":
        return cls(
            job=job,
            makespan=result.makespan,
            mean_response=result.mean_response,
            inconsistency=result.inconsistency,
            max_response=result.max_response,
            hit_rate=result.hit_rate,
            total_requests=result.total_requests,
            fetches=result.fetches,
            evictions=result.evictions,
            wall_time_s=result.wall_time_s,
        )

    def row(self) -> dict[str, Any]:
        """Flat dict for table rendering / CSV export."""
        cfg = self.job.config
        return {
            "tag": self.job.tag,
            "workload": self.job.workload.kind,
            "threads": self.job.workload.threads,
            "hbm_slots": cfg.hbm_slots,
            "channels": cfg.channels,
            "arbitration": cfg.arbitration,
            "replacement": cfg.replacement,
            "remap_period": cfg.remap_period,
            "makespan": self.makespan,
            "mean_response": round(self.mean_response, 3),
            "inconsistency": round(self.inconsistency, 3),
            "max_response": self.max_response,
            "hit_rate": round(self.hit_rate, 4),
            "requests": self.total_requests,
            "fetches": self.fetches,
            "evictions": self.evictions,
            "wall_time_s": round(self.wall_time_s, 6),
        }


# module-level worker state so ProcessPoolExecutor can pickle the worker
_WORKER_CACHE_DIR: str | None = None
_WORKER_ENGINE: str | None = None


def _pool_init(cache_dir: str | None, engine: str | None = None) -> None:
    global _WORKER_CACHE_DIR, _WORKER_ENGINE
    _WORKER_CACHE_DIR = cache_dir
    _WORKER_ENGINE = engine


def _run_job(job: SweepJob) -> SweepRecord:
    cache = WorkloadCache(_WORKER_CACHE_DIR) if _WORKER_CACHE_DIR else None
    workload = job.workload.build(cache)
    # Dispatch through the engine selector: eligible (LRU, protected,
    # disjoint) configs take the vectorized fast path, everything else
    # falls back to the reference engine with identical results. The
    # Workload object is passed whole so its build-time attestation
    # replaces the per-dispatch disjointness scan.
    result = simulate(workload, job.config, engine=_WORKER_ENGINE)
    return SweepRecord.from_result(job, result)


#: SweepRecord fields persisted by the result cache (everything except
#: the job itself, which the caller supplies on a hit).
_RESULT_FIELDS = tuple(f.name for f in fields(SweepRecord) if f.name != "job")

#: spec params that scale simulated work, for the scheduling cost hint
_SIZE_PARAM_KEYS = ("n", "length", "repeats", "vertices", "iters")


def _record_payload(record: SweepRecord) -> dict[str, Any]:
    return {name: getattr(record, name) for name in _RESULT_FIELDS}


def _record_from_payload(job: SweepJob, payload: dict[str, Any]) -> SweepRecord | None:
    if not all(name in payload for name in _RESULT_FIELDS):
        return None  # written by an older schema; treat as a miss
    return SweepRecord(job=job, **{name: payload[name] for name in _RESULT_FIELDS})


def _job_cost_hint(job: SweepJob) -> float:
    """Crude relative runtime estimate, used only to order pool submits.

    Longest-job-first keeps a big job from landing on a worker after
    the queue has drained; a wrong hint costs nothing but scheduling
    quality.
    """
    params = dict(job.workload.params)
    size = 1.0
    for key in _SIZE_PARAM_KEYS:
        value = params.get(key)
        if isinstance(value, (int, float)) and value > 1:
            size *= float(value)
    return job.workload.threads * size


_RESULT_CACHE_DEFAULT = True


def set_result_cache_default(enabled: bool) -> bool:
    """Set the process-wide result-cache default; returns the old value.

    Used by the CLI's ``--no-result-cache`` flag; individual runners can
    still override via their ``result_cache`` argument.
    """
    global _RESULT_CACHE_DEFAULT
    previous = _RESULT_CACHE_DEFAULT
    _RESULT_CACHE_DEFAULT = bool(enabled)
    return previous


class SweepRunner:
    """Executes sweep jobs, optionally across a process pool.

    ``processes=None`` picks ``os.cpu_count()``; ``processes<=1`` runs
    sequentially in-process (useful under pytest and for debugging).

    ``engine`` selects the simulator per job (``"auto"`` /
    ``"reference"`` / ``"fast"``; ``None`` uses the process default from
    :func:`repro.core.fastengine.set_default_engine`).

    When ``cache_dir`` is given and ``result_cache`` is enabled (the
    default, see :func:`set_result_cache_default`), finished records
    are persisted under ``<cache_dir>/results/`` and re-running a job
    list replays hits from disk without touching any engine.
    """

    def __init__(
        self,
        processes: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        engine: str | None = None,
        result_cache: bool | None = None,
    ) -> None:
        self.processes = processes if processes is not None else (os.cpu_count() or 1)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.engine = engine if engine is not None else default_engine()
        self.result_cache = (
            result_cache if result_cache is not None else _RESULT_CACHE_DEFAULT
        )

    def prepare(self, jobs: Sequence[SweepJob]) -> None:
        """Warm the workload cache: generate each distinct spec once."""
        if self.cache_dir is None:
            return
        cache = WorkloadCache(self.cache_dir)
        for spec in dict.fromkeys(job.workload for job in jobs):
            spec.build(cache)

    def _result_cache(self) -> ResultCache | None:
        if self.cache_dir is None or not self.result_cache:
            return None
        return ResultCache(Path(self.cache_dir) / "results")

    def run(self, jobs: Sequence[SweepJob]) -> list[SweepRecord]:
        if not jobs:
            return []
        cache = self._result_cache()
        records: list[SweepRecord | None] = [None] * len(jobs)
        keys: list[str | None] = [None] * len(jobs)
        pending: list[int] = []
        for idx, job in enumerate(jobs):
            if cache is not None:
                keys[idx] = sweep_result_key(job.workload, job.config)
                payload = cache.get(keys[idx])
                if payload is not None:
                    record = _record_from_payload(job, payload)
                    if record is not None:
                        records[idx] = record
                        continue
            pending.append(idx)

        if pending:
            if self.processes <= 1 or len(pending) == 1:
                _pool_init(self.cache_dir, self.engine)
                fresh = [(idx, _run_job(jobs[idx])) for idx in pending]
            else:
                self.prepare([jobs[idx] for idx in pending])
                # Longest-job-first: order submissions by the cost hint
                # so stragglers start early instead of serializing the
                # tail once the queue drains.
                order = sorted(
                    pending, key=lambda idx: _job_cost_hint(jobs[idx]), reverse=True
                )
                with ProcessPoolExecutor(
                    max_workers=min(self.processes, len(pending)),
                    initializer=_pool_init,
                    initargs=(self.cache_dir, self.engine),
                ) as pool:
                    futures = {idx: pool.submit(_run_job, jobs[idx]) for idx in order}
                    fresh = [(idx, futures[idx].result()) for idx in pending]
            for idx, record in fresh:
                records[idx] = record
                if cache is not None and keys[idx] is not None:
                    cache.put(keys[idx], _record_payload(record))
        return records  # type: ignore[return-value]  # every slot filled


def run_sweep(
    jobs: Sequence[SweepJob],
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    engine: str | None = None,
    result_cache: bool | None = None,
) -> list[SweepRecord]:
    """One-call sweep execution."""
    return SweepRunner(
        processes=processes,
        cache_dir=cache_dir,
        engine=engine,
        result_cache=result_cache,
    ).run(jobs)
