"""Parameter-sweep harness (paper section 1.2's experimental grid).

The paper varies: HBM size, trace source, core count, work
distribution, permutation scheme, remap period, channel count, and
queue policy. A sweep here is a list of :class:`SweepJob` s — each names
a workload *by generator spec* (kind, threads, seed, params) plus a
:class:`~repro.core.SimulationConfig` — executed across worker
processes. Jobs carry specs rather than trace arrays so that workers
regenerate (or cache-load) workloads locally instead of pickling
multi-megabyte traces through the pool; the disk cache is warmed in the
parent first so each expensive instrumented workload is generated
exactly once.

Two further levers make repeated campaigns cheap:

* a persistent **result cache** (:mod:`repro.analysis.resultcache`):
  records are pure functions of (spec, config), so a re-run only
  simulates jobs never seen before (enabled whenever ``cache_dir`` is
  given; disable with ``result_cache=False``);
* **longest-job-first scheduling**: pool submissions are ordered by a
  crude cost hint so one straggler at the end of the job list no
  longer serializes the tail of the campaign.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core import SimulationConfig, SimulationResult
from ..core.fastengine import default_engine, resolve_engine, simulate
from ..core.metrics import (
    histogram_from_json,
    histogram_percentile,
    histogram_to_json,
)
from ..obs.log import get_logger
from ..obs.manifest import MANIFEST_SCHEMA, host_info
from ..traces import Workload, WorkloadCache, make_workload
from .resultcache import ResultCache, sweep_result_key

__all__ = [
    "WorkloadSpec",
    "PayloadRequest",
    "SweepPayload",
    "SweepJob",
    "SweepRecord",
    "SweepRunner",
    "CampaignStats",
    "run_sweep",
    "set_result_cache_default",
]

log = get_logger("sweep")


@dataclass(frozen=True)
class WorkloadSpec:
    """Pickle-friendly recipe for a workload."""

    kind: str
    threads: int
    seed: int = 0
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, threads: int, seed: int = 0, **params: Any) -> "WorkloadSpec":
        return cls(kind, threads, seed, tuple(sorted(params.items())))

    def build(self, cache: WorkloadCache | None = None) -> Workload:
        params = dict(self.params)
        if cache is not None:
            return cache.get(self.kind, self.threads, seed=self.seed, **params)
        return make_workload(self.kind, self.threads, seed=self.seed, **params)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}(threads={self.threads}, seed={self.seed}, {inner})"


@dataclass(frozen=True)
class PayloadRequest:
    """What extra data a job asks its record to carry beyond the metrics.

    A slim record (the default) holds scalar metrics only. A *fat*
    record additionally carries the requested payloads, which the
    result cache persists and replays like any other field:

    * ``response_histogram`` — the run's global response-time
      distribution plus per-thread summary statistics (the raw material
      of the paper's inconsistency/fairness analysis, Figures 4-5);
    * ``response_series`` — the exact per-thread response-time
      sequences (sets ``record_responses`` on the engine; memory-heavy,
      meant for small runs and tests);
    * ``probe_samples`` — a :class:`~repro.obs.TimelineProbe` attached
      at ``probe_stride``, its samples stored as flat dicts.

    The request is part of the result-cache key (see
    :func:`repro.analysis.resultcache.sweep_result_key`), so slim and
    fat records of the same (spec, config) never collide; an empty
    request leaves the key unchanged from the slim-era format, keeping
    existing caches warm.
    """

    response_histogram: bool = False
    response_series: bool = False
    probe_samples: bool = False
    probe_stride: int = 1024

    def __bool__(self) -> bool:
        return self.response_histogram or self.response_series or self.probe_samples

    def to_dict(self) -> dict[str, Any]:
        """Canonical dict for cache-key hashing."""
        return {
            "response_histogram": self.response_histogram,
            "response_series": self.response_series,
            "probe_samples": self.probe_samples,
            # the stride changes what gets sampled, so it is part of
            # the key — but only when sampling is actually requested
            "probe_stride": self.probe_stride if self.probe_samples else None,
        }


@dataclass(frozen=True)
class SweepPayload:
    """The payload data carried by a fat record (JSON round-trippable)."""

    #: global response-time distribution (``response -> count``)
    response_histogram: dict[int, int] | None = None
    #: per-thread summaries: thread, requests, hits, completion_tick,
    #: mean/std/max response
    thread_stats: tuple[dict[str, Any], ...] | None = None
    #: exact per-thread response-time sequences
    response_series: tuple[tuple[int, ...], ...] | None = None
    #: flat-dict probe samples (see ``ProbeSample.to_dict``)
    probe_samples: tuple[dict[str, Any], ...] | None = None
    probe_stride: int | None = None

    def response_percentile(self, fraction: float) -> int:
        """Percentile of the carried response distribution."""
        if self.response_histogram is None:
            raise ValueError("record does not carry a response histogram")
        return histogram_percentile(self.response_histogram, fraction)

    def to_json_dict(self) -> dict[str, Any]:
        """Encode for the result cache (histogram keys stringified)."""
        return {
            "response_histogram": (
                histogram_to_json(self.response_histogram)
                if self.response_histogram is not None
                else None
            ),
            "thread_stats": (
                list(self.thread_stats) if self.thread_stats is not None else None
            ),
            "response_series": (
                [list(series) for series in self.response_series]
                if self.response_series is not None
                else None
            ),
            "probe_samples": (
                list(self.probe_samples) if self.probe_samples is not None else None
            ),
            "probe_stride": self.probe_stride,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepPayload":
        """Inverse of :meth:`to_json_dict`."""
        histogram = data.get("response_histogram")
        thread_stats = data.get("thread_stats")
        series = data.get("response_series")
        samples = data.get("probe_samples")
        return cls(
            response_histogram=(
                histogram_from_json(histogram) if histogram is not None else None
            ),
            thread_stats=(
                tuple(thread_stats) if thread_stats is not None else None
            ),
            response_series=(
                tuple(tuple(int(v) for v in s) for s in series)
                if series is not None
                else None
            ),
            probe_samples=tuple(samples) if samples is not None else None,
            probe_stride=data.get("probe_stride"),
        )

    @classmethod
    def from_result(
        cls,
        request: PayloadRequest,
        result: SimulationResult,
        probe: Any = None,
    ) -> "SweepPayload | None":
        """Extract the requested payloads from a finished simulation."""
        if not request:
            return None
        histogram = None
        thread_stats = None
        if request.response_histogram:
            histogram = dict(result.response_histogram)
            thread_stats = tuple(
                {
                    "thread": t.thread,
                    "requests": t.requests,
                    "hits": t.hits,
                    "completion_tick": t.completion_tick,
                    "mean_response": t.response.mean,
                    "std_response": t.response.std,
                    "max_response": t.response.max,
                }
                for t in result.thread_stats
            )
        series = None
        if request.response_series:
            if result.response_log is None:
                raise RuntimeError(
                    "engine did not record responses despite the payload request"
                )
            series = tuple(
                tuple(int(v) for v in log) for log in result.response_log
            )
        samples = None
        if request.probe_samples:
            samples = tuple(s.to_dict() for s in probe.samples) if probe else ()
        return cls(
            response_histogram=histogram,
            thread_stats=thread_stats,
            response_series=series,
            probe_samples=samples,
            probe_stride=request.probe_stride if request.probe_samples else None,
        )


@dataclass(frozen=True)
class SweepJob:
    """One simulation to run: a workload spec plus a config.

    ``payload`` requests extra record contents (response distributions,
    raw series, probe samples) — see :class:`PayloadRequest`.
    """

    workload: WorkloadSpec
    config: SimulationConfig
    tag: str = ""
    payload: PayloadRequest = PayloadRequest()


@dataclass(frozen=True)
class SweepRecord:
    """Flattened outcome of one job (CSV/table-friendly).

    ``cached`` distinguishes a replayed record from a fresh simulation:
    on a cache hit, ``wall_time_s`` still reports the *original* run's
    simulation time (the replay itself is near-free), so performance
    analysis of warm campaigns must filter on ``cached``.

    ``payload`` holds the extra data the job requested (response
    distributions, raw series, probe samples); ``None`` for slim jobs.
    """

    job: SweepJob
    makespan: int
    mean_response: float
    inconsistency: float
    max_response: int
    hit_rate: float
    total_requests: int
    hits: int
    fetches: int
    evictions: int
    wall_time_s: float
    cached: bool = False
    payload: SweepPayload | None = None

    @property
    def misses(self) -> int:
        return self.total_requests - self.hits

    @classmethod
    def from_result(
        cls,
        job: SweepJob,
        result: SimulationResult,
        payload: SweepPayload | None = None,
    ) -> "SweepRecord":
        return cls(
            job=job,
            makespan=result.makespan,
            mean_response=result.mean_response,
            inconsistency=result.inconsistency,
            max_response=result.max_response,
            hit_rate=result.hit_rate,
            total_requests=result.total_requests,
            hits=result.hits,
            fetches=result.fetches,
            evictions=result.evictions,
            wall_time_s=result.wall_time_s,
            payload=payload,
        )

    def row(self) -> dict[str, Any]:
        """Flat dict for table rendering / CSV export."""
        cfg = self.job.config
        return {
            "tag": self.job.tag,
            "workload": self.job.workload.kind,
            "threads": self.job.workload.threads,
            "hbm_slots": cfg.hbm_slots,
            "channels": cfg.channels,
            "arbitration": cfg.arbitration,
            "replacement": cfg.replacement,
            "remap_period": cfg.remap_period,
            "makespan": self.makespan,
            "mean_response": round(self.mean_response, 3),
            "inconsistency": round(self.inconsistency, 3),
            "max_response": self.max_response,
            "hit_rate": round(self.hit_rate, 4),
            "requests": self.total_requests,
            "fetches": self.fetches,
            "evictions": self.evictions,
            "wall_time_s": round(self.wall_time_s, 6),
            "cached": self.cached,
        }


# module-level worker state so ProcessPoolExecutor can pickle the worker
_WORKER_CACHE_DIR: str | None = None
_WORKER_ENGINE: str | None = None


def _pool_init(cache_dir: str | None, engine: str | None = None) -> None:
    global _WORKER_CACHE_DIR, _WORKER_ENGINE
    _WORKER_CACHE_DIR = cache_dir
    _WORKER_ENGINE = engine


def _engine_config(job: SweepJob) -> tuple[SimulationConfig, Any]:
    """The config actually handed to the engine, plus any probe.

    Payload requests are satisfied by runtime-only switches: raw series
    need ``record_responses``; probe samples need a TimelineProbe
    attached. Neither changes simulation *results* (enforced by the
    differential tests in ``tests/test_obs.py``), so the record stays a
    pure function of (spec, config, payload request).
    """
    request = job.payload
    if not request:
        return job.config, None
    changes: dict[str, Any] = {}
    probe = None
    if request.response_series and not job.config.record_responses:
        changes["record_responses"] = True
    if request.probe_samples:
        from ..obs.probe import TimelineProbe

        probe = TimelineProbe()
        changes["probes"] = job.config.probes + (probe,)
        changes["probe_stride"] = request.probe_stride
    return (job.config.replace(**changes) if changes else job.config), probe


def _run_job(job: SweepJob) -> tuple[SweepRecord, dict[str, Any]]:
    cache = WorkloadCache(_WORKER_CACHE_DIR) if _WORKER_CACHE_DIR else None
    build_start = time.perf_counter()
    workload = job.workload.build(cache)
    build_s = time.perf_counter() - build_start
    # Dispatch through the engine selector: eligible (LRU, protected,
    # disjoint) configs take the vectorized fast path, everything else
    # falls back to the reference engine with identical results. The
    # Workload object is passed whole so its build-time attestation
    # replaces the per-dispatch disjointness scan.
    config, probe = _engine_config(job)
    result = simulate(workload, config, engine=_WORKER_ENGINE)
    payload = SweepPayload.from_result(job.payload, result, probe)
    record = SweepRecord.from_result(job, result, payload)
    # Run manifest stored alongside the metrics in the result cache, so
    # a replayed record stays auditable: which engine produced it, on
    # what host, and where the wall time went.
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "engine": resolve_engine(workload, config, _WORKER_ENGINE),
        "host": host_info(),
        "timings": {
            "workload_build_s": round(build_s, 6),
            "run_s": round(result.wall_time_s, 6),
        },
    }
    return record, manifest


#: SweepRecord fields persisted by the result cache as plain scalars
#: (the job is supplied by the caller on a hit; the payload has its own
#: JSON encoding).
_RESULT_FIELDS = tuple(
    f.name for f in fields(SweepRecord) if f.name not in ("job", "payload")
)

#: spec params that scale simulated work, for the scheduling cost hint
_SIZE_PARAM_KEYS = ("n", "length", "repeats", "vertices", "iters")


def _record_payload(record: SweepRecord) -> dict[str, Any]:
    entry = {name: getattr(record, name) for name in _RESULT_FIELDS}
    if record.payload is not None:
        entry["payload"] = record.payload.to_json_dict()
    return entry


def _record_from_payload(job: SweepJob, payload: dict[str, Any]) -> SweepRecord | None:
    if not all(name in payload for name in _RESULT_FIELDS):
        return None  # written by an older schema; treat as a miss
    values = {name: payload[name] for name in _RESULT_FIELDS}
    if job.payload:
        # A fat job must replay a fat entry. The payload request is part
        # of the cache key, so a missing payload here means corruption
        # or a hand-edited entry — recompute rather than degrade.
        stored = payload.get("payload")
        if stored is None:
            return None
        values["payload"] = SweepPayload.from_json_dict(stored)
    # A replayed record is marked cached regardless of what was stored:
    # wall_time_s is the *original* simulation time, not this replay's.
    values["cached"] = True
    return SweepRecord(job=job, **values)


def _job_cost_hint(job: SweepJob) -> float:
    """Crude relative runtime estimate, used only to order pool submits.

    Longest-job-first keeps a big job from landing on a worker after
    the queue has drained; a wrong hint costs nothing but scheduling
    quality.
    """
    params = dict(job.workload.params)
    size = 1.0
    for key in _SIZE_PARAM_KEYS:
        value = params.get(key)
        if isinstance(value, (int, float)) and value > 1:
            size *= float(value)
    return job.workload.threads * size


@dataclass
class CampaignStats:
    """Telemetry for one :meth:`SweepRunner.run` invocation.

    ``wall_time_s`` is this campaign's wall clock; ``sim_time_s`` sums
    only *fresh* records' simulation time (cache hits replay the
    original ``wall_time_s``, which must not be double-counted — see
    :attr:`SweepRecord.cached`).
    """

    total_jobs: int = 0
    cache_hits: int = 0
    simulated: int = 0
    wall_time_s: float = 0.0
    sim_time_s: float = 0.0
    #: (workload kind, arbitration policy) -> {jobs, cached, sim_wall_s}
    by_group: dict[tuple[str, str], dict[str, Any]] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0

    @classmethod
    def collect(
        cls, records: Sequence["SweepRecord"], wall_time_s: float
    ) -> "CampaignStats":
        stats = cls(total_jobs=len(records), wall_time_s=wall_time_s)
        for record in records:
            key = (record.job.workload.kind, record.job.config.arbitration)
            group = stats.by_group.setdefault(
                key, {"jobs": 0, "cached": 0, "sim_wall_s": 0.0}
            )
            group["jobs"] += 1
            if record.cached:
                stats.cache_hits += 1
                group["cached"] += 1
            else:
                stats.simulated += 1
                stats.sim_time_s += record.wall_time_s
                group["sim_wall_s"] += record.wall_time_s
        return stats

    def summary_table(self) -> str:
        """Wall-time-by-(kind, policy) campaign digest."""
        from .tables import format_table

        rows = [
            {
                "workload": kind,
                "arbitration": arb,
                "jobs": group["jobs"],
                "cached": group["cached"],
                "sim_wall_s": round(group["sim_wall_s"], 4),
            }
            for (kind, arb), group in sorted(self.by_group.items())
        ]
        rows.append(
            {
                "workload": "TOTAL",
                "arbitration": "",
                "jobs": self.total_jobs,
                "cached": self.cache_hits,
                "sim_wall_s": round(self.sim_time_s, 4),
            }
        )
        title = (
            f"campaign: {self.total_jobs} jobs, {self.cache_hits} cache hits "
            f"({self.cache_hit_rate:.0%}), wall {self.wall_time_s:.2f}s "
            f"(simulation {self.sim_time_s:.2f}s)"
        )
        return format_table(rows, title=title)


_RESULT_CACHE_DEFAULT = True


def set_result_cache_default(enabled: bool) -> bool:
    """Set the process-wide result-cache default; returns the old value.

    Used by the CLI's ``--no-result-cache`` flag; individual runners can
    still override via their ``result_cache`` argument.
    """
    global _RESULT_CACHE_DEFAULT
    previous = _RESULT_CACHE_DEFAULT
    _RESULT_CACHE_DEFAULT = bool(enabled)
    return previous


class SweepRunner:
    """Executes sweep jobs, optionally across a process pool.

    ``processes=None`` picks ``os.cpu_count()``; ``processes<=1`` runs
    sequentially in-process (useful under pytest and for debugging).

    ``engine`` selects the simulator per job (``"auto"`` /
    ``"reference"`` / ``"fast"``; ``None`` uses the process default from
    :func:`repro.core.fastengine.set_default_engine`).

    When ``cache_dir`` is given and ``result_cache`` is enabled (the
    default, see :func:`set_result_cache_default`), finished records
    are persisted under ``<cache_dir>/results/`` and re-running a job
    list replays hits from disk without touching any engine.

    Campaign telemetry flows through the ``repro.sweep`` logger (INFO:
    start/summary, DEBUG: per-job completions) and the
    :class:`CampaignStats` left in :attr:`last_campaign` after each
    :meth:`run`.
    """

    def __init__(
        self,
        processes: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        engine: str | None = None,
        result_cache: bool | None = None,
    ) -> None:
        self.processes = processes if processes is not None else (os.cpu_count() or 1)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.engine = engine if engine is not None else default_engine()
        self.result_cache = (
            result_cache if result_cache is not None else _RESULT_CACHE_DEFAULT
        )
        #: telemetry from the most recent :meth:`run`
        self.last_campaign: CampaignStats | None = None

    def prepare(self, jobs: Sequence[SweepJob]) -> None:
        """Warm the workload cache: generate each distinct spec once."""
        if self.cache_dir is None:
            return
        cache = WorkloadCache(self.cache_dir)
        specs = dict.fromkeys(job.workload for job in jobs)
        log.debug("warming workload cache: %d distinct specs", len(specs))
        for spec in specs:
            spec.build(cache)

    def _result_cache(self) -> ResultCache | None:
        if self.cache_dir is None or not self.result_cache:
            return None
        return ResultCache(Path(self.cache_dir) / "results")

    def run(self, jobs: Sequence[SweepJob]) -> list[SweepRecord]:
        if not jobs:
            self.last_campaign = CampaignStats()
            return []
        campaign_start = time.perf_counter()
        cache = self._result_cache()
        records: list[SweepRecord | None] = [None] * len(jobs)
        keys: list[str | None] = [None] * len(jobs)
        pending: list[int] = []
        for idx, job in enumerate(jobs):
            if cache is not None:
                keys[idx] = sweep_result_key(job.workload, job.config, job.payload)
                payload = cache.get(keys[idx])
                if payload is not None:
                    record = _record_from_payload(job, payload)
                    if record is not None:
                        records[idx] = record
                        continue
            pending.append(idx)

        hits = len(jobs) - len(pending)
        log.info(
            "campaign start: %d jobs (%d cache hits, %d to simulate) "
            "engine=%s processes=%d cache=%s",
            len(jobs),
            hits,
            len(pending),
            self.engine,
            self.processes,
            "off" if cache is None else "on",
        )
        if cache is not None and log.isEnabledFor(10):  # DEBUG
            cache_stats = cache.stats()
            log.debug(
                "result cache at %s: %d entries, %d bytes",
                cache.directory,
                cache_stats["entries"],
                cache_stats["bytes"],
            )

        def _store(idx: int, record: SweepRecord, manifest: dict[str, Any]) -> None:
            records[idx] = record
            if cache is not None and keys[idx] is not None:
                cache.put(
                    keys[idx], {**_record_payload(record), "manifest": manifest}
                )

        def _progress(done: int, idx: int, record: SweepRecord) -> None:
            job = jobs[idx]
            log.debug(
                "job %d/%d done: %s x %s/%s makespan=%d wall=%.3fs",
                done,
                len(pending),
                job.workload.kind,
                job.config.arbitration,
                job.config.replacement,
                record.makespan,
                record.wall_time_s,
            )

        if pending:
            if self.processes <= 1 or len(pending) == 1:
                _pool_init(self.cache_dir, self.engine)
                for done, idx in enumerate(pending, start=1):
                    record, manifest = _run_job(jobs[idx])
                    _store(idx, record, manifest)
                    _progress(done, idx, record)
            else:
                self.prepare([jobs[idx] for idx in pending])
                # Longest-job-first: order submissions by the cost hint
                # so stragglers start early instead of serializing the
                # tail once the queue drains.
                order = sorted(
                    pending, key=lambda idx: _job_cost_hint(jobs[idx]), reverse=True
                )
                with ProcessPoolExecutor(
                    max_workers=min(self.processes, len(pending)),
                    initializer=_pool_init,
                    initargs=(self.cache_dir, self.engine),
                ) as pool:
                    futures = {pool.submit(_run_job, jobs[idx]): idx for idx in order}
                    done = 0
                    not_done = set(futures)
                    while not_done:
                        finished, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        for future in finished:
                            idx = futures[future]
                            record, manifest = future.result()
                            done += 1
                            _store(idx, record, manifest)
                            _progress(done, idx, record)

        stats = CampaignStats.collect(
            records,  # type: ignore[arg-type]  # every slot filled
            wall_time_s=time.perf_counter() - campaign_start,
        )
        self.last_campaign = stats
        log.info("%s", stats.summary_table())
        return records  # type: ignore[return-value]  # every slot filled


def run_sweep(
    jobs: Sequence[SweepJob],
    processes: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    engine: str | None = None,
    result_cache: bool | None = None,
) -> list[SweepRecord]:
    """One-call sweep execution."""
    return SweepRunner(
        processes=processes,
        cache_dir=cache_dir,
        engine=engine,
        result_cache=result_cache,
    ).run(jobs)
