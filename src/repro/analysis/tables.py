"""ASCII table rendering and CSV export for experiment output.

No plotting dependencies are available in this environment, so every
paper table/figure is emitted as an aligned text table (for the
terminal) plus CSV (for downstream plotting).
"""

from __future__ import annotations

import csv
import io
import os
from typing import Any, Mapping, Sequence

__all__ = ["format_table", "to_csv", "write_csv"]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value else "0"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def to_csv(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """Serialize dict rows to CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col) for col in columns})
    return buffer.getvalue()


def write_csv(
    rows: Sequence[Mapping[str, Any]],
    path: str | os.PathLike,
    columns: Sequence[str] | None = None,
) -> None:
    """Write dict rows to a CSV file."""
    text = to_csv(rows, columns)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(text)
