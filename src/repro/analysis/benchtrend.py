"""Bench-regression tracking: baseline capture and tolerance-band diffs.

The benchmark suite leaves machine-readable result files next to the
repo root (``BENCH_engine.json``, ``BENCH_sweep.json``,
``BENCH_batch.json``, ``BENCH_obs.json``), but until now nothing
*compared* them across commits — the perf trajectory was invisible.
This module closes the loop:

* :func:`record` folds the current ``BENCH_*.json`` set into a
  committed ``benchmarks/baseline.json`` (``repro bench record`` /
  ``scripts/bench_record.py``);
* :func:`compare` diffs the current numbers against that baseline and
  classifies every metric; ``repro bench diff`` exits non-zero when any
  *gated* metric regresses past its tolerance band.

Gating policy — the part that keeps CI honest without flaking:

* **Relative metrics** (speedups, dispatch ratios) are hardware-neutral
  — both sides of the ratio ran on the same machine — so they gate with
  a multiplicative tolerance band (default ±25%).
* **Overhead fractions** (the obs bench's probe cost) sit near zero, so
  a relative band is meaningless; they gate on an absolute ceiling:
  ``current <= baseline + overhead_band``.
* **Absolute wall times** vary with the host and CI load; they are
  reported for trend-eyeballing but never gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "BASELINE_SCHEMA",
    "SUITES",
    "GATED_METRICS",
    "BenchEntry",
    "BenchDiff",
    "flatten_metrics",
    "load_bench_files",
    "load_baseline",
    "compare",
    "record",
    "format_report",
]

BASELINE_SCHEMA = "repro.bench.baseline/v1"

#: suite name -> the result file its bench test writes
SUITES = {
    "engine": "BENCH_engine.json",
    "sweep": "BENCH_sweep.json",
    "batch": "BENCH_batch.json",
    "obs": "BENCH_obs.json",
}

#: gated metric -> gate mode, per suite. ``"higher"`` = a ratio that
#: must not drop below ``baseline * (1 - tolerance)``; ``"ceiling"`` =
#: an overhead fraction that must not exceed ``baseline +
#: overhead_band``. Everything else is informational.
GATED_METRICS: dict[str, dict[str, str]] = {
    "engine": {
        "miss_bound.ff_speedup": "higher",
        "hit_heavy.ff_speedup": "higher",
    },
    "sweep": {"cache_speedup": "higher", "dispatch_speedup": "higher"},
    "batch": {"batch_speedup": "higher"},
    "obs": {
        "fast.overhead_fraction": "ceiling",
        "reference.overhead_fraction": "ceiling",
        "telemetry.overhead_fraction": "ceiling",
    },
}


def flatten_metrics(doc: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a (possibly nested) bench document, dot-keyed.

    Non-numeric leaves (workload descriptions and the like) are
    dropped; booleans are not numbers here.
    """
    flat: dict[str, float] = {}
    for key, value in doc.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_metrics(value, prefix=f"{name}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = float(value)
    return flat


def load_bench_files(
    search_dirs: Iterable[str | Path] = (".",),
) -> dict[str, dict[str, float]]:
    """Current bench results: ``{suite: {metric: value}}``.

    Each suite's file is taken from the first search directory that has
    it; suites with no file anywhere are simply absent (the diff
    reports them as not-measured rather than failing — CI may run a
    subset).
    """
    current: dict[str, dict[str, float]] = {}
    for suite, filename in SUITES.items():
        for directory in search_dirs:
            path = Path(directory) / filename
            if path.is_file():
                current[suite] = flatten_metrics(
                    json.loads(path.read_text(encoding="utf-8"))
                )
                break
    return current


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Parse a recorded baseline, rejecting unknown schemas."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: unknown baseline schema {doc.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA})"
        )
    return doc


@dataclass(frozen=True)
class BenchEntry:
    """One metric's verdict in a bench diff."""

    suite: str
    metric: str
    baseline: float | None
    current: float | None
    #: "ok" | "regression" | "improved" | "info" | "new" | "not-measured"
    status: str
    #: current / baseline when both sides exist and baseline != 0
    ratio: float | None = None

    @property
    def gated(self) -> bool:
        return self.metric in GATED_METRICS.get(self.suite, {})


@dataclass
class BenchDiff:
    """Outcome of :func:`compare` (render with :func:`format_report`)."""

    tolerance: float
    overhead_band: float
    entries: list[BenchEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchEntry]:
        return [e for e in self.entries if e.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _classify(
    suite: str,
    metric: str,
    baseline: float,
    current: float,
    tolerance: float,
    overhead_band: float,
) -> str:
    mode = GATED_METRICS.get(suite, {}).get(metric)
    if mode == "higher":
        if current < baseline * (1.0 - tolerance):
            return "regression"
        if current > baseline * (1.0 + tolerance):
            return "improved"
        return "ok"
    if mode == "ceiling":
        return "regression" if current > baseline + overhead_band else "ok"
    return "info"


def compare(
    current: Mapping[str, Mapping[str, float]],
    baseline: Mapping[str, Any],
    tolerance: float = 0.25,
    overhead_band: float = 0.05,
) -> BenchDiff:
    """Diff current bench results against a recorded baseline.

    Only gated metrics can produce ``"regression"`` entries; a gated
    metric present in the baseline but absent from ``current`` is
    ``"not-measured"`` (the bench did not run — a CI configuration
    problem, not a perf one, so it never fails the gate by itself).
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    diff = BenchDiff(tolerance=tolerance, overhead_band=overhead_band)
    suites = baseline.get("suites", {})
    for suite in sorted(set(suites) | set(current)):
        base_metrics = dict(suites.get(suite, {}))
        cur_metrics = dict(current.get(suite, {}))
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            base = base_metrics.get(metric)
            cur = cur_metrics.get(metric)
            if base is None:
                status = "new"
            elif cur is None:
                status = "not-measured"
            else:
                status = _classify(
                    suite, metric, base, cur, tolerance, overhead_band
                )
            ratio = (
                cur / base
                if base not in (None, 0) and cur is not None
                else None
            )
            diff.entries.append(
                BenchEntry(
                    suite=suite,
                    metric=metric,
                    baseline=base,
                    current=cur,
                    status=status,
                    ratio=round(ratio, 4) if ratio is not None else None,
                )
            )
    return diff


def record(
    current: Mapping[str, Mapping[str, float]],
    baseline_path: str | Path,
    updated: str = "",
) -> dict[str, Any]:
    """Fold ``current`` into the baseline file (per-suite overwrite).

    Suites not present in ``current`` keep their previously recorded
    numbers, so a partial bench run never erases history. Returns the
    written document.
    """
    path = Path(baseline_path)
    if path.is_file():
        doc = load_baseline(path)
    else:
        doc = {"schema": BASELINE_SCHEMA, "updated": "", "suites": {}}
    if updated:
        doc["updated"] = updated
    for suite, metrics in current.items():
        doc["suites"][suite] = {k: metrics[k] for k in sorted(metrics)}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return doc


def format_report(diff: BenchDiff) -> str:
    """Human-readable diff table, regressions first."""
    from .tables import format_table

    order = {"regression": 0, "improved": 1, "ok": 2, "not-measured": 3, "new": 4, "info": 5}
    rows = [
        {
            "suite": e.suite,
            "metric": e.metric,
            "baseline": e.baseline if e.baseline is not None else "",
            "current": e.current if e.current is not None else "",
            "ratio": e.ratio if e.ratio is not None else "",
            "gate": (
                GATED_METRICS.get(e.suite, {}).get(e.metric, "")
            ),
            "status": e.status,
        }
        for e in sorted(
            diff.entries, key=lambda e: (order.get(e.status, 9), e.suite, e.metric)
        )
    ]
    verdict = (
        f"{len(diff.regressions)} regression(s)"
        if diff.regressions
        else "no regressions"
    )
    title = (
        f"bench diff vs baseline: {verdict} "
        f"(tolerance ±{diff.tolerance:.0%}, overhead band "
        f"+{diff.overhead_band:.2f})"
    )
    return format_table(rows, title=title)
