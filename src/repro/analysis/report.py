"""Markdown report generation from experiment outputs.

``python -m repro run ... --output-dir results/`` writes per-experiment
CSV and text artifacts; this module additionally renders a combined
Markdown report (tables, check outcomes, and a run manifest) — the
machine-generated half of EXPERIMENTS.md-style records.
"""

from __future__ import annotations

import os
import platform
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # imported lazily to avoid an analysis<->experiments cycle
    from ..experiments.base import ExperimentOutput

__all__ = ["markdown_table", "render_report", "write_report"]


def _cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value).replace("|", "\\|")


def markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render dict rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "*(no rows)*"
    if columns is None:
        columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(c)) for c in columns) + " |")
    return "\n".join(lines)


def render_report(
    outputs: "Sequence[ExperimentOutput]",
    title: str = "Experiment report",
    max_rows: int = 40,
) -> str:
    """One Markdown document covering a batch of experiment outputs."""
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    total_checks = sum(len(o.checks) for o in outputs)
    passed = sum(sum(o.checks.values()) for o in outputs)
    lines = [
        f"# {title}",
        "",
        f"Generated {stamp} on {platform.platform()} "
        f"(Python {platform.python_version()}).",
        "",
        f"**{passed}/{total_checks} shape checks passed** across "
        f"{len(outputs)} experiments.",
        "",
        "| experiment | scale | checks | status |",
        "|---|---|---|---|",
    ]
    for out in outputs:
        ok = sum(out.checks.values())
        status = "PASS" if out.all_checks_pass else (
            "FAIL: " + ", ".join(out.failed_checks())
        )
        lines.append(
            f"| {out.experiment_id} | {out.scale} | {ok}/{len(out.checks)} "
            f"| {status} |"
        )
    for out in outputs:
        lines += ["", f"## {out.experiment_id}: {out.title}", ""]
        shown = out.rows[:max_rows]
        lines.append(markdown_table(shown))
        if len(out.rows) > max_rows:
            lines.append(f"\n*… {len(out.rows) - max_rows} more rows in the CSV.*")
        if out.checks:
            lines.append("")
            for name, value in out.checks.items():
                lines.append(f"- {'✅' if value else '❌'} `{name}`")
    return "\n".join(lines) + "\n"


def write_report(
    outputs: "Sequence[ExperimentOutput]",
    path: str | os.PathLike,
    title: str = "Experiment report",
) -> None:
    """Write :func:`render_report`'s output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_report(outputs, title=title))
