"""Live campaign telemetry: metrics aggregation, event stream, TTY status.

:class:`CampaignTelemetry` is the parent-side sink the
:class:`~repro.analysis.SweepRunner` drives while a campaign executes.
It aggregates the per-job metric snapshots piggybacked on worker
outcomes (see :mod:`repro.obs.metrics`) into one live
:class:`~repro.obs.metrics.MetricsRegistry` and exposes the campaign
three ways:

* **JSONL event stream** (``events_out``): one ``campaign.start``
  event, a ``campaign.progress`` event every ``progress_every``
  completions (monotone ``done``, throughput, ETA, cache hit-rate,
  in-flight jobs from worker heartbeats), and one terminal
  ``campaign.end`` summary — append-only, so a service front-end can
  tail one file across many campaigns.
* **Prometheus snapshot** (``metrics_out``): the registry rendered in
  text exposition format, rewritten atomically on every progress event
  and at campaign end, ready for a node-exporter-style scrape.
* **Live single-line TTY status** (``live=True``): a ``\\r``-rewritten
  one-liner on stderr, automatically silent when the stream is not a
  terminal (CI logs never fill with control characters).

Telemetry is strictly observational: enabling any output changes no
:class:`~repro.analysis.SweepRecord`, manifest, or result-cache entry
(differential-tested in ``tests/test_telemetry.py``).

Workers report liveness for long jobs through *heartbeat files*: one
small JSON file per worker pid under :attr:`CampaignTelemetry.spool_dir`,
rewritten every few seconds while a job runs. Files survive any worker
death, so the parent can always tell a stuck job from a dead worker.

Process-wide defaults mirror the execution-policy pattern in
:mod:`repro.analysis.sweep`: the CLI's ``--metrics-out`` /
``--events-out`` / ``--live`` / ``--progress-every`` flags call
:func:`set_telemetry_defaults`, and every runner constructed without an
explicit ``telemetry`` argument shares one process-global sink (so
``repro run all`` folds every experiment's campaign into one stream and
one registry).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import IO, Any, Mapping

from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, write_prom

__all__ = [
    "CampaignTelemetry",
    "HeartbeatWriter",
    "set_telemetry_defaults",
    "default_telemetry",
    "iter_campaign_events",
    "HEARTBEAT_INTERVAL_S",
]

log = get_logger("telemetry")

#: how often a worker rewrites its heartbeat file while a job runs
#: (override with REPRO_HEARTBEAT_S)
HEARTBEAT_INTERVAL_S = float(os.environ.get("REPRO_HEARTBEAT_S", "5.0"))

#: event stream schema tag (bump on incompatible change).
#: v2 added the campaign-durability fields (``resumed``, ``shard``,
#: ``campaign_id``, ``store``) to start/end events; v1 streams differ
#: only by their absence and stay readable (see
#: :func:`iter_campaign_events`).
EVENT_SCHEMA = "repro.campaign.events/v2"

#: schema tags :func:`iter_campaign_events` accepts
_READABLE_SCHEMAS = ("repro.campaign.events/v1", EVENT_SCHEMA)


def iter_campaign_events(path: str | os.PathLike) -> "Any":
    """Yield parsed events from a campaign JSONL stream.

    Accepts both the v1 and v2 schemas; v1 events are upgraded in place
    by filling the v2-only fields with their quiet defaults (``resumed``
    0, ``shard``/``campaign_id``/``store`` empty) on start/end events.
    Blank and truncated lines are skipped (the stream is append-only
    and may be mid-write); an event with an unknown schema tag raises
    ``ValueError`` rather than being misread.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue  # torn final line of a live stream
            schema = event.get("schema", "")
            if schema not in _READABLE_SCHEMAS:
                raise ValueError(
                    f"unknown campaign event schema {schema!r} in {path}"
                )
            if event.get("event") in ("campaign.start", "campaign.end"):
                event.setdefault("resumed", 0)
                event.setdefault("shard", "")
                if event.get("event") == "campaign.end":
                    event.setdefault("campaign_id", "")
                    event.setdefault("store", "")
            yield event

_UNSET = object()

_TELEMETRY_DEFAULTS: dict[str, Any] = {
    "metrics_out": None,
    "events_out": None,
    "live": False,
    "progress_every": 1,
}

_GLOBAL: "CampaignTelemetry | None" = None


def set_telemetry_defaults(
    metrics_out: Any = _UNSET,
    events_out: Any = _UNSET,
    live: Any = _UNSET,
    progress_every: Any = _UNSET,
) -> dict[str, Any]:
    """Set process-wide telemetry defaults; returns the old ones.

    Used by the CLI flags (experiment runners have no telemetry
    parameters); restore with ``set_telemetry_defaults(**previous)``.
    Changing the defaults discards the process-global sink so the next
    campaign picks up the new configuration.
    """
    global _GLOBAL
    # validate everything before mutating anything, so a rejected call
    # leaves the defaults exactly as they were
    if progress_every is not _UNSET and int(progress_every) < 1:
        raise ValueError(f"progress_every must be >= 1, got {progress_every!r}")
    previous = dict(_TELEMETRY_DEFAULTS)
    if metrics_out is not _UNSET:
        _TELEMETRY_DEFAULTS["metrics_out"] = (
            str(metrics_out) if metrics_out is not None else None
        )
    if events_out is not _UNSET:
        _TELEMETRY_DEFAULTS["events_out"] = (
            str(events_out) if events_out is not None else None
        )
    if live is not _UNSET:
        _TELEMETRY_DEFAULTS["live"] = bool(live)
    if progress_every is not _UNSET:
        _TELEMETRY_DEFAULTS["progress_every"] = int(progress_every)
    if _GLOBAL is not None:
        _GLOBAL.close()
        _GLOBAL = None
    return previous


def default_telemetry() -> "CampaignTelemetry | None":
    """The process-global sink per the current defaults (``None`` when
    no output is enabled — the runner then skips every telemetry hook)."""
    global _GLOBAL
    d = _TELEMETRY_DEFAULTS
    if not (d["metrics_out"] or d["events_out"] or d["live"]):
        return None
    if _GLOBAL is None:
        _GLOBAL = CampaignTelemetry(
            metrics_out=d["metrics_out"],
            events_out=d["events_out"],
            live=d["live"],
            progress_every=d["progress_every"],
        )
    return _GLOBAL


class HeartbeatWriter:
    """Worker-side liveness beacon for one job (or batch) attempt.

    A daemon thread rewrites ``hb-<pid>.json`` in the campaign's spool
    directory every :data:`HEARTBEAT_INTERVAL_S` seconds while the job
    runs, carrying the job tag, attempt number, elapsed wall time, and
    a snapshot of the worker's in-progress metrics registry. The first
    write happens only after one full interval, so short jobs pay
    nothing but a thread start/stop. The parent reads these files for
    its in-flight view (:meth:`CampaignTelemetry.scan_inflight`) but
    never *merges* their metric snapshots — the authoritative snapshot
    rides on the job outcome, and merging a prefix of it would double
    count.
    """

    def __init__(
        self,
        spool_dir: str | os.PathLike,
        tag: str = "",
        attempt: int = 1,
        registry: MetricsRegistry | None = None,
        interval_s: float | None = None,
    ) -> None:
        self._path = Path(spool_dir) / f"hb-{os.getpid()}.json"
        self._tag = tag
        self._attempt = attempt
        self._registry = registry
        self._interval = (
            float(interval_s) if interval_s is not None else HEARTBEAT_INTERVAL_S
        )
        self._started = time.perf_counter()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-heartbeat", daemon=True
        )

    def start(self) -> "HeartbeatWriter":
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._write()

    def _write(self) -> None:
        doc: dict[str, Any] = {
            "pid": os.getpid(),
            "tag": self._tag,
            "attempt": self._attempt,
            "elapsed_s": round(time.perf_counter() - self._started, 3),
            "ts": round(time.time(), 3),
        }
        if self._registry is not None and self._registry:
            doc["metrics"] = self._registry.snapshot()
        tmp = self._path.with_suffix(f".tmp{os.getpid()}")
        try:
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            os.replace(tmp, self._path)
        except OSError:
            pass  # spool removed under us (campaign ending); never fatal

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)
        try:
            self._path.unlink(missing_ok=True)
        except OSError:
            pass


class CampaignTelemetry:
    """One telemetry sink, reusable across sequential campaigns.

    ``stream`` (default ``sys.stderr``) carries the live status line;
    it is only written when ``live`` is set *and* the stream is a TTY.
    """

    def __init__(
        self,
        metrics_out: str | os.PathLike | None = None,
        events_out: str | os.PathLike | None = None,
        live: bool = False,
        progress_every: int = 1,
        stream: IO[str] | None = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.metrics_out = Path(metrics_out) if metrics_out is not None else None
        self.events_out = Path(events_out) if events_out is not None else None
        self.progress_every = max(1, int(progress_every))
        self._stream = stream if stream is not None else sys.stderr
        self._live = bool(live) and self._is_tty(self._stream)
        self._seq = 0
        self._spool_dir: Path | None = None
        self._live_dirty = False
        self._last_live_write = 0.0
        # per-campaign state (reset by campaign_start)
        self._label = ""
        self._total = 0
        self._pending = 0
        self._done = 0
        self._failed = 0
        self._cache_hits = 0
        self._started = 0.0

    @staticmethod
    def _is_tty(stream: IO[str]) -> bool:
        try:
            return bool(stream.isatty())
        except (AttributeError, ValueError):
            return False

    # -- heartbeat spool -----------------------------------------------

    @property
    def spool_dir(self) -> str:
        """Directory pool workers write heartbeat files into (created
        lazily; one per sink, removed by :meth:`close`)."""
        if self._spool_dir is None:
            self._spool_dir = Path(tempfile.mkdtemp(prefix="repro-telemetry-"))
        return str(self._spool_dir)

    def scan_inflight(self, max_age_s: float = 4 * HEARTBEAT_INTERVAL_S) -> list[dict]:
        """Recent worker heartbeats: ``[{pid, tag, elapsed_s, ...}]``.

        Stale files (no rewrite within ``max_age_s`` — the worker
        finished, moved on, or died) are ignored.
        """
        if self._spool_dir is None or not self._spool_dir.exists():
            return []
        now = time.time()
        beats: list[dict] = []
        for path in sorted(self._spool_dir.glob("hb-*.json")):
            try:
                if now - path.stat().st_mtime > max_age_s:
                    continue
                beats.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, ValueError):
                continue  # mid-rewrite or already gone; never fatal
        return beats

    # -- event stream ---------------------------------------------------

    def _emit(self, event: str, payload: Mapping[str, Any]) -> None:
        self._seq += 1
        doc = {
            "schema": EVENT_SCHEMA,
            "event": event,
            "seq": self._seq,
            "ts": round(time.time(), 3),
            "campaign": self._label,
            **payload,
        }
        if self.events_out is None:
            return
        try:
            self.events_out.parent.mkdir(parents=True, exist_ok=True)
            with open(self.events_out, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(doc, sort_keys=True) + "\n")
        except OSError as exc:
            log.warning("cannot append campaign event to %s: %s", self.events_out, exc)
            self.events_out = None  # stop retrying a broken path

    def _write_metrics(self) -> None:
        if self.metrics_out is None:
            return
        try:
            write_prom(self.registry, self.metrics_out)
        except OSError as exc:
            log.warning("cannot write metrics snapshot to %s: %s", self.metrics_out, exc)
            self.metrics_out = None

    # -- campaign lifecycle --------------------------------------------

    def campaign_start(
        self,
        label: str,
        total: int,
        cache_hits: int,
        pending: int,
        engine: str = "",
        processes: int = 0,
        resumed: int = 0,
        shard: str = "",
    ) -> None:
        self._label = label
        self._total = total
        self._pending = pending
        self._done = 0
        self._failed = 0
        self._cache_hits = cache_hits
        self._started = time.perf_counter()
        reg = self.registry
        jobs = reg.counter("repro_campaign_jobs_total", "campaign job outcomes")
        if cache_hits:
            jobs.inc(cache_hits, status="cached")
        reg.gauge(
            "repro_campaign_inflight_jobs", "jobs submitted but unfinished"
        ).set(0)
        # pre-declare the fault counters at 0 so a healthy campaign's
        # snapshot still exposes the series (scrapers can alert on
        # increase() without waiting for a first fault)
        reg.counter(
            "repro_campaign_retries_total", "individual job retry attempts"
        ).inc(0)
        reg.counter(
            "repro_campaign_recovered_total",
            "in-flight jobs resubmitted after a worker death",
        ).inc(0)
        reg.counter(
            "repro_campaign_pool_rebuilds_total", "process-pool reconstructions"
        ).inc(0)
        reg.counter(
            "repro_worker_warnings_total",
            "deduplicated warnings forwarded from pool workers",
        ).inc(0)
        self._update_rates()
        self._emit(
            "campaign.start",
            {
                "total": total,
                "cache_hits": cache_hits,
                "pending": pending,
                "engine": engine,
                "processes": processes,
                "resumed": resumed,
                "shard": shard,
            },
        )
        self._live_dirty = True
        self.tick(force=True)

    def _elapsed(self) -> float:
        return time.perf_counter() - self._started

    def _rate(self) -> float:
        elapsed = self._elapsed()
        return self._done / elapsed if elapsed > 0 else 0.0

    def _eta_s(self) -> float | None:
        rate = self._rate()
        remaining = self._pending - self._done
        if rate <= 0 or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        return remaining / rate

    def _update_rates(self) -> None:
        reg = self.registry
        reg.gauge(
            "repro_campaign_throughput_jobs_per_s",
            "fresh job completions per second, this campaign",
        ).set(round(self._rate(), 6))
        reg.gauge(
            "repro_campaign_cache_hit_rate",
            "fraction of this campaign's jobs replayed from the result cache",
        ).set(round(self._cache_hits / self._total, 6) if self._total else 0.0)
        eta = self._eta_s()
        if eta is not None:
            reg.gauge(
                "repro_campaign_eta_seconds",
                "estimated seconds until the pending frontier drains",
            ).set(round(eta, 3))

    def job_done(
        self,
        record: Any,
        worker_metrics: Mapping[str, Any] | None = None,
        warnings: int = 0,
    ) -> None:
        """One fresh job finished (successfully or permanently failed)."""
        self._done += 1
        reg = self.registry
        if worker_metrics:
            reg.merge(worker_metrics)
        status = "failed" if getattr(record, "failed", False) else "simulated"
        if status == "failed":
            self._failed += 1
        reg.counter("repro_campaign_jobs_total", "campaign job outcomes").inc(
            1, status=status
        )
        if warnings:
            reg.counter(
                "repro_worker_warnings_total",
                "deduplicated warnings forwarded from pool workers",
            ).inc(warnings)
        self._update_rates()
        if self._done % self.progress_every == 0 or self._done >= self._pending:
            self.emit_progress()
        self._live_dirty = True
        self.tick()

    def job_retried(self) -> None:
        self.registry.counter(
            "repro_campaign_retries_total", "individual job retry attempts"
        ).inc()

    def jobs_recovered(self, count: int) -> None:
        self.registry.counter(
            "repro_campaign_recovered_total",
            "in-flight jobs resubmitted after a worker death",
        ).inc(count)

    def pool_rebuilt(self) -> None:
        self.registry.counter(
            "repro_campaign_pool_rebuilds_total", "process-pool reconstructions"
        ).inc()

    def emit_progress(self) -> None:
        inflight = self.scan_inflight()
        self.registry.gauge(
            "repro_campaign_inflight_jobs", "jobs submitted but unfinished"
        ).set(len(inflight))
        payload: dict[str, Any] = {
            "done": self._done,
            "pending": self._pending,
            "total": self._total,
            "failed": self._failed,
            "cache_hits": self._cache_hits,
            "elapsed_s": round(self._elapsed(), 3),
            "jobs_per_s": round(self._rate(), 4),
            "cache_hit_rate": (
                round(self._cache_hits / self._total, 4) if self._total else 0.0
            ),
        }
        eta = self._eta_s()
        if eta is not None:
            payload["eta_s"] = round(eta, 3)
        if inflight:
            payload["inflight"] = [
                {"tag": b.get("tag", ""), "elapsed_s": round(b.get("elapsed_s", 0.0), 3)}
                for b in inflight
            ]
        self._emit("campaign.progress", payload)
        self._write_metrics()

    def campaign_end(self, stats: Any) -> None:
        self._update_rates()
        reg = self.registry
        reg.counter("repro_campaign_runs_total", "campaigns completed").inc()
        reg.counter(
            "repro_campaign_wall_seconds_total", "campaign wall time"
        ).inc(stats.wall_time_s)
        self._emit(
            "campaign.end",
            {
                "total": stats.total_jobs,
                "cache_hits": stats.cache_hits,
                "simulated": stats.simulated,
                "failed": stats.failed,
                "retried": stats.retried,
                "recovered": stats.recovered,
                "pool_rebuilds": stats.pool_rebuilds,
                "resumed": getattr(stats, "resumed", 0),
                "shard": getattr(stats, "shard", ""),
                "campaign_id": getattr(stats, "campaign_id", ""),
                "store": getattr(stats, "store", ""),
                "wall_time_s": round(stats.wall_time_s, 6),
                "sim_time_s": round(stats.sim_time_s, 6),
                "cache_hit_rate": round(stats.cache_hit_rate, 4),
            },
        )
        self._write_metrics()
        self._clear_live_line()

    def flush(self) -> None:
        """Rewrite the Prometheus snapshot now (e.g. after a reduce step
        recorded phases past the campaign's own final write)."""
        self._write_metrics()

    # -- live status line -----------------------------------------------

    def tick(self, force: bool = False) -> None:
        """Refresh the live line (rate-limited; call freely from loops)."""
        if not self._live:
            return
        now = time.perf_counter()
        if not force and (
            not self._live_dirty and now - self._last_live_write < 1.0
        ):
            return
        if not force and now - self._last_live_write < 0.1:
            return
        self._last_live_write = now
        self._live_dirty = False
        rate = self._rate()
        eta = self._eta_s()
        parts = [
            f"[{self._label or 'campaign'}]",
            f"{self._done}/{self._pending} jobs",
            f"{self._cache_hits} cached",
        ]
        if self._failed:
            parts.append(f"{self._failed} failed")
        parts.append(f"{rate:.2f} jobs/s")
        if eta is not None and self._done < self._pending:
            parts.append(f"eta {eta:.0f}s")
        inflight = self.scan_inflight()
        if inflight:
            oldest = max(b.get("elapsed_s", 0.0) for b in inflight)
            parts.append(f"{len(inflight)} in flight (oldest {oldest:.0f}s)")
        line = "  ".join(parts)
        try:
            self._stream.write("\r\x1b[2K" + line[:200])
            self._stream.flush()
        except (OSError, ValueError):
            self._live = False

    def _clear_live_line(self) -> None:
        if not self._live:
            return
        try:
            self._stream.write("\r\x1b[2K")
            self._stream.flush()
        except (OSError, ValueError):
            self._live = False

    def close(self) -> None:
        """Remove the heartbeat spool; the sink stays usable afterwards
        (a new spool is created on demand)."""
        self._clear_live_line()
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None
