"""Cross-run statistics used by the experiment modules.

Helpers for the comparisons the paper reports: ratio curves between two
policies over a swept axis (Figures 2-4), and fairness summaries across
threads (the starvation analysis of section 4).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..core import SimulationResult
from ..obs.log import get_logger, warn_once
from .sweep import SweepRecord

__all__ = ["ratio_series", "group_records", "fairness_summary"]

log = get_logger("analysis.stats")


def group_records(
    records: Sequence[SweepRecord],
    key: Callable[[SweepRecord], Any],
) -> dict[Any, list[SweepRecord]]:
    """Group sweep records by an arbitrary key function."""
    groups: dict[Any, list[SweepRecord]] = {}
    for record in records:
        groups.setdefault(key(record), []).append(record)
    return groups


def ratio_series(
    records: Sequence[SweepRecord],
    numerator: str,
    denominator: str,
    x_key: Callable[[SweepRecord], Any] = lambda r: r.job.workload.threads,
    metric: Callable[[SweepRecord], float] = lambda r: r.makespan,
) -> list[tuple[Any, float]]:
    """(x, metric[numerator] / metric[denominator]) pairs over an axis.

    ``numerator`` / ``denominator`` name arbitration policies; records
    are matched on everything else via ``x_key`` (plus hbm_slots and
    channels). The paper's Figure 2 is
    ``ratio_series(records, "fifo", "priority")``: values > 1 mean
    Priority wins.
    """
    def match_key(record: SweepRecord):
        return (x_key(record), record.job.config.hbm_slots, record.job.config.channels)

    num = {
        match_key(r): metric(r)
        for r in records
        if r.job.config.arbitration == numerator
    }
    den = {
        match_key(r): metric(r)
        for r in records
        if r.job.config.arbitration == denominator
    }
    series = []
    for key in sorted(num.keys() & den.keys()):
        if den[key] == 0:
            # A zero-makespan (or zero-metric) record points at an
            # upstream bug — an empty workload, a failed sweep record
            # aggregated by mistake. Dropping the point silently would
            # bury that, so name it; once per key so replayed campaigns
            # don't flood the log.
            warn_once(
                log,
                ("ratio_series", numerator, denominator, key),
                "ratio_series: dropping point x=%r (hbm_slots=%r, "
                "channels=%r): %s record has zero %s in the denominator",
                key[0],
                key[1],
                key[2],
                denominator,
                getattr(metric, "__name__", "metric"),
            )
            continue
        series.append((key[0], num[key] / den[key]))
    return series


def fairness_summary(result: SimulationResult) -> dict[str, float]:
    """Per-thread spread statistics (the section 4 starvation lens)."""
    completions = np.array([t.completion_tick for t in result.thread_stats], float)
    max_waits = np.array([t.response.max for t in result.thread_stats], float)
    mean_waits = np.array([t.response.mean for t in result.thread_stats], float)
    active = completions > 0
    return {
        "makespan": float(result.makespan),
        "inconsistency": result.inconsistency,
        "mean_response": result.mean_response,
        "completion_spread": float(
            completions[active].max() - completions[active].min()
        )
        if active.any()
        else 0.0,
        "worst_thread_max_wait": float(max_waits.max(initial=0.0)),
        "median_thread_max_wait": float(np.median(max_waits)) if len(max_waits) else 0.0,
        "mean_wait_ratio_worst_to_best": float(
            mean_waits[active].max() / max(mean_waits[active].min(), 1e-12)
        )
        if active.any()
        else 0.0,
    }
