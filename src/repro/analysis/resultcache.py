"""Persistent, content-addressed cache of sweep results.

A sweep record is a pure function of its job: the workload spec fully
determines the traces (generators are seed-deterministic), the
:class:`~repro.core.SimulationConfig` fully determines the policies,
and both engines are deterministic for a fixed seed. Re-running a
figure therefore only needs to simulate jobs whose (spec, config) pair
has never been seen — everything else can be replayed from disk, the
same memoization that makes parameter studies tractable in the related
placement/migration simulators.

Keys are SHA-256 digests of a canonical JSON encoding of the workload
spec, the full config dict, and
:data:`repro.core.engine.ENGINE_SEMANTICS_VERSION`. The version tag is
the safety interlock: any PR that changes simulator *outputs* bumps it,
which atomically invalidates every cached record. Job ``tag`` s are
deliberately excluded — records are stored per (spec, config), so the
same simulation tagged differently by two figures is computed once.

Entries are one small JSON file per key (written atomically via
``os.replace``) in a ``results/`` directory next to the workload
cache's ``.npz`` files, so ``--cache-dir`` governs both caches and
deleting the directory resets both. Unreadable or truncated entries are
treated as misses, never as errors. Besides the metric payload, the
sweep harness stores a run ``manifest`` in each entry (engine, host,
wall-time phases — see :mod:`repro.obs.manifest`), so a cached record
remains auditable long after the run that produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

from ..core.engine import ENGINE_SEMANTICS_VERSION

__all__ = ["ResultCache", "sweep_result_key"]


def sweep_result_key(workload_spec, config, payload=None) -> str:
    """Stable content hash of one sweep job's inputs.

    ``workload_spec`` needs ``kind``/``threads``/``seed``/``params``
    attributes (:class:`~repro.analysis.sweep.WorkloadSpec`); ``config``
    needs ``to_dict()`` (:class:`~repro.core.SimulationConfig`);
    ``payload`` is an optional
    :class:`~repro.analysis.sweep.PayloadRequest`. A truthy payload
    request is hashed into the key so fat records (carrying response
    distributions, raw series, or probe samples) never collide with
    slim records of the same (spec, config); an empty/absent request
    leaves the key bit-identical to the historical slim format, so
    caches written before payloads existed stay warm.
    """
    blob_dict = {
        "workload": {
            "kind": workload_spec.kind,
            "threads": workload_spec.threads,
            "seed": workload_spec.seed,
            "params": list(workload_spec.params),
        },
        "config": config.to_dict(),
        "engine_semantics": ENGINE_SEMANTICS_VERSION,
    }
    if payload:
        blob_dict["payload"] = payload.to_dict()
    blob = json.dumps(blob_dict, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """Key -> JSON-payload store for sweep records.

    The cache stores plain metric dicts rather than pickled records so
    entries stay inspectable (``cat`` able), diffable, and robust to
    refactors of the record class.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload, or None on miss/corruption (never raises)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Store ``payload`` under ``key`` atomically.

        Refuses payloads flagged as failed: a cache entry asserts "this
        (spec, config) simulated successfully", and replaying a
        transient worker failure forever would poison every later
        campaign. The sweep harness never offers failed records; this
        guard catches any future caller that tries.
        """
        if payload.get("error"):
            raise ValueError(
                f"refusing to cache failed sweep result under key {key!r}"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(dict(payload), sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cached result (and any stale ``*.tmp*`` files
        left by killed writers); returns the number removed."""
        removed = 0
        if self.directory.exists():
            stale = set(self.directory.glob("*.json"))
            stale.update(self.directory.glob("*.tmp*"))
            for f in stale:
                f.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> dict[str, int]:
        """Entry count and on-disk footprint, for campaign telemetry."""
        entries = 0
        size = 0
        if self.directory.exists():
            for f in self.directory.glob("*.json"):
                entries += 1
                try:
                    size += f.stat().st_size
                except OSError:
                    pass
        return {"entries": entries, "bytes": size}
