"""Compatibility shim for the historical result-cache module.

The content-addressed result cache grew into the pluggable store layer
in :mod:`repro.store`: the backend protocol lives in
:mod:`repro.store.base`, the local-directory backend (this module's old
``ResultCache``, byte-compatible on disk) in
:mod:`repro.store.dirstore`, and a SQLite/WAL backend for concurrent
writers in :mod:`repro.store.sqlitestore`. Import from
:mod:`repro.store` in new code; this module keeps the old names
working so downstream scripts and warm caches are untouched.
"""

from __future__ import annotations

from ..store.base import sweep_result_key
from ..store.dirstore import DirectoryStore as ResultCache

__all__ = ["ResultCache", "sweep_result_key"]
