"""Deterministic fault injection for the sweep harness.

The fault-tolerance machinery in :mod:`repro.analysis.sweep` (per-job
retries, timeouts, process-pool rebuilds) is only trustworthy if it can
be exercised on demand — worker crashes are otherwise too rare and too
nondeterministic to test. This module turns the ``REPRO_FAULT_INJECT``
environment variable into a *fault plan* that sweep workers consult at
the top of every job attempt. The variable (rather than an in-process
registry) is the carrier so that the plan survives the hop into pool
worker processes, which inherit the parent's environment under both
``fork`` and ``spawn`` start methods.

Plan syntax: ``;``-separated specs of the form ``mode:match[:opts]``

* ``mode`` — what to do when the spec fires:

  - ``raise`` — raise :class:`InjectedFault` (a plain worker exception);
  - ``sleep`` — block for ``seconds`` (use with a per-job timeout to
    exercise the deadline path);
  - ``kill``  — ``SIGKILL`` the executing process, which the parent
    observes as a ``BrokenProcessPool``. Only meaningful under a
    process pool: with ``processes<=1`` this kills the campaign's own
    process.
  - ``kill-parent`` — ``SIGKILL`` the campaign *parent* at the
    post-record checkpoint (after a record is stored and marked done
    in the frontier), never a worker. This is the probe for
    ``--resume``: the next run of the same campaign must pick up
    exactly where the dead parent stopped. Fired only via
    :func:`maybe_inject_parent`; :func:`maybe_inject` (the worker
    point) ignores it.

* ``match`` — a substring of the job ``tag`` (``*`` matches every job).

* ``opts`` — comma-separated ``key=value`` pairs:

  - ``attempts=N`` — fire only while the job's attempt number is
    ``<= N`` (default 1, so a single retry clears the fault;
    ``attempts=0`` fires on every attempt);
  - ``seconds=S`` — sleep duration for ``sleep`` (default 30);
  - ``after=N`` — for ``kill-parent``: die at the ``N``-th matching
    record completion in this process (default 1). The counter is
    process-local, so the resuming run dies again after ``N`` more
    records unless it clears the plan.

Examples::

    REPRO_FAULT_INJECT="raise:victim"             # first attempt raises
    REPRO_FAULT_INJECT="sleep:slow:seconds=5"     # overrun the timeout
    REPRO_FAULT_INJECT="kill:*:attempts=1"        # every job's first try dies
    REPRO_FAULT_INJECT="raise:a;kill:b"           # two independent faults
    REPRO_FAULT_INJECT="kill-parent:*:after=3"    # parent dies after 3 records

Everything here is deterministic given the job tag and attempt number,
so faulty campaigns are exactly reproducible.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = [
    "FAULT_ENV",
    "FaultSpec",
    "InjectedFault",
    "active_fault_plan",
    "maybe_inject",
    "maybe_inject_parent",
    "parse_fault_plan",
    "set_fault_plan",
]

#: environment variable holding the fault plan (inherited by workers)
FAULT_ENV = "REPRO_FAULT_INJECT"

_MODES = ("raise", "sleep", "kill", "kill-parent")

#: matching record completions seen by maybe_inject_parent, this process
_parent_hits = 0


class InjectedFault(RuntimeError):
    """The exception raised by a ``raise``-mode fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: when to fire and what to do."""

    mode: str
    match: str = "*"
    #: fire while ``attempt <= attempts``; 0 means every attempt
    attempts: int = 1
    #: sleep duration for ``sleep`` mode
    seconds: float = 30.0
    #: for ``kill-parent``: die at the Nth matching record completion
    after: int = 1

    def fires(self, tag: str, attempt: int) -> bool:
        if self.attempts and attempt > self.attempts:
            return False
        return self.match == "*" or self.match in tag


def parse_fault_plan(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULT_INJECT`` value into fault specs."""
    specs: list[FaultSpec] = []
    for item in text.split(";"):
        item = item.strip()
        if not item:
            continue
        parts = item.split(":")
        mode = parts[0].strip().lower()
        if mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {mode!r} in {item!r}; known: {_MODES}"
            )
        match = parts[1].strip() if len(parts) > 1 and parts[1].strip() else "*"
        attempts = 1
        seconds = 30.0
        after = 1
        if len(parts) > 2 and parts[2].strip():
            for opt in parts[2].split(","):
                key, _, raw = opt.partition("=")
                key = key.strip()
                if key == "attempts":
                    attempts = int(raw)
                elif key == "seconds":
                    seconds = float(raw)
                elif key == "after":
                    after = int(raw)
                else:
                    raise ValueError(
                        f"unknown fault option {key!r} in {item!r}"
                    )
        specs.append(
            FaultSpec(
                mode=mode,
                match=match,
                attempts=attempts,
                seconds=seconds,
                after=after,
            )
        )
    return tuple(specs)


def set_fault_plan(text: str | None) -> str | None:
    """Install (or clear, with ``None``) the process-wide fault plan.

    Returns the previous plan so callers can restore it. The plan lives
    in ``os.environ`` so future pool workers inherit it; it is validated
    eagerly so a typo fails in the test, not silently in a worker.
    """
    previous = os.environ.get(FAULT_ENV)
    if text is None:
        os.environ.pop(FAULT_ENV, None)
    else:
        parse_fault_plan(text)  # validate before installing
        os.environ[FAULT_ENV] = text
    return previous


def active_fault_plan() -> tuple[FaultSpec, ...]:
    """The currently installed fault plan (empty when none/invalid).

    An unparseable plan is ignored rather than raised: a worker must
    never crash *because of* the crash-testing machinery itself.
    """
    text = os.environ.get(FAULT_ENV)
    if not text:
        return ()
    try:
        return parse_fault_plan(text)
    except ValueError:
        return ()


def maybe_inject(tag: str, attempt: int) -> None:
    """Fire every installed fault that matches this job attempt.

    Called by the sweep worker at the top of each attempt, inside the
    per-job deadline (so a ``sleep`` fault is interruptible by the
    timeout machinery it exists to test).
    """
    for spec in active_fault_plan():
        if spec.mode == "kill-parent":
            continue  # parent-side injection point only
        if not spec.fires(tag, attempt):
            continue
        if spec.mode == "raise":
            raise InjectedFault(
                f"injected fault for job tag={tag!r} (attempt {attempt})"
            )
        if spec.mode == "sleep":
            time.sleep(spec.seconds)
        elif spec.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)


def maybe_inject_parent(tag: str) -> None:
    """Fire any ``kill-parent`` fault matching this finished record.

    Called by the campaign parent immediately *after* a fresh record has
    been stored and marked done in the campaign frontier — the point
    where dying must lose nothing. ``SIGKILL`` (not an exception) so no
    ``finally`` block can soften the crash being simulated.
    """
    global _parent_hits
    for spec in active_fault_plan():
        if spec.mode != "kill-parent":
            continue
        if spec.match != "*" and spec.match not in tag:
            continue
        _parent_hits += 1
        if _parent_hits >= spec.after:
            os.kill(os.getpid(), signal.SIGKILL)
