"""Terminal line/scatter plots for figure-shaped results.

Minimal, dependency-free renderings: each figure experiment prints one
of these next to its CSV so the paper's curve shapes (crossovers, the
linear FIFO blow-up, the inconsistency-makespan tradeoff cloud) are
visible directly in the bench output.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_plot", "scatter_plot", "sparkline"]

_MARKERS = "ox+*#@%&"

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """One-line magnitude rendering of a series (telemetry digests).

    Values are bucketed down to ``width`` columns (mean per bucket) and
    mapped onto a 10-level character ramp scaled to the series range.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        # mean-pool into exactly `width` buckets
        pooled = []
        for col in range(width):
            lo = col * len(values) // width
            hi = max((col + 1) * len(values) // width, lo + 1)
            chunk = values[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        values = pooled
    vmin, vmax = min(values), max(values)
    if vmax == vmin:
        level = _SPARK_LEVELS[-1] if vmax > 0 else _SPARK_LEVELS[0]
        return level * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (vmax - vmin)
    return "".join(_SPARK_LEVELS[round((v - vmin) * scale)] for v in values)


def _nice_num(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.2e}"
    return f"{value:.3g}"


def _render_grid(
    points_by_series: Mapping[str, Sequence[tuple[float, float]]],
    width: int,
    height: int,
    title: str | None,
    xlabel: str,
    ylabel: str,
    logx: bool = False,
) -> str:
    all_points = [p for pts in points_by_series.values() for p in pts]
    if not all_points:
        return (title or "") + "\n(no data)"

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    xs = [tx(p[0]) for p in all_points]
    ys = [p[1] for p in all_points]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, pts) in enumerate(points_by_series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in pts:
            col = round((tx(x) - xmin) / (xmax - xmin) * (width - 1))
            row = round((y - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(points_by_series)
    )
    lines.append(legend)
    ytop, ybot = _nice_num(ymax), _nice_num(ymin)
    label_w = max(len(ytop), len(ybot), len(ylabel))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = ytop.rjust(label_w)
        elif i == height - 1:
            prefix = ybot.rjust(label_w)
        elif i == height // 2:
            prefix = ylabel.rjust(label_w)[:label_w]
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}|")
    x0 = _nice_num(10**xmin if logx else xmin)
    x1 = _nice_num(10**xmax if logx else xmax)
    footer = f"{' ' * label_w}  {x0}{xlabel.center(width - len(x0) - len(x1))}{x1}"
    lines.append(footer)
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
    width: int = 64,
    height: int = 16,
    logx: bool = False,
) -> str:
    """Plot named (x, y) series as character markers on a shared grid."""
    ordered = {
        name: sorted(points) for name, points in series.items() if points
    }
    return _render_grid(ordered, width, height, title, xlabel, ylabel, logx=logx)


def scatter_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
    width: int = 64,
    height: int = 16,
    logx: bool = False,
) -> str:
    """Scatter rendering (same grid; points not assumed ordered)."""
    return _render_grid(
        {k: list(v) for k, v in series.items() if v},
        width,
        height,
        title,
        xlabel,
        ylabel,
        logx=logx,
    )
