#!/usr/bin/env python
"""Quickstart: simulate FIFO vs Priority vs Dynamic Priority.

Builds the paper's adversarial cyclic workload (Dataset 3), sizes HBM to
a quarter of the total unique pages (the Figure 3 protocol), and runs
the three headline far-channel arbitration policies. Expected outcome:
FIFO never hits and its makespan blows up; static Priority fixes the
makespan but starves low-priority threads (huge max response time);
Dynamic Priority with a reshuffle every k ticks keeps the makespan
while taming the starvation.

Run:
    python examples/quickstart.py
"""

from repro import SimulationConfig, Simulator, make_workload
from repro.analysis import format_table
from repro.traces import fifo_adversarial_hbm_slots

THREADS = 16
PAGES = 64
REPEATS = 25


def main() -> None:
    workload = make_workload(
        "adversarial_cycle", threads=THREADS, pages=PAGES, repeats=REPEATS
    )
    hbm_slots = fifo_adversarial_hbm_slots(THREADS, PAGES)  # 1/4 of pages
    print(f"{workload}  (HBM = {hbm_slots} slots)\n")

    policies = [
        ("fifo", None),
        ("priority", None),
        ("dynamic_priority", hbm_slots),
    ]
    rows = []
    for arbitration, remap_period in policies:
        config = SimulationConfig(
            hbm_slots=hbm_slots,
            arbitration=arbitration,
            remap_period=remap_period,
            seed=0,
        )
        result = Simulator(workload.traces, config).run()
        rows.append(
            {
                "policy": arbitration,
                "makespan": result.makespan,
                "hit_rate": round(result.hit_rate, 3),
                "mean_response": round(result.mean_response, 2),
                "inconsistency": round(result.inconsistency, 1),
                "worst_stall": result.max_response,
            }
        )

    print(format_table(rows, title="Far-channel arbitration on Dataset 3"))
    fifo, priority, dynamic = (r["makespan"] for r in rows)
    print(
        f"\nFIFO is {fifo / priority:.1f}x slower than Priority; "
        f"Dynamic Priority (T = k) keeps the makespan "
        f"({dynamic / priority:.2f}x Priority's) while cutting the worst "
        f"stall from {rows[1]['worst_stall']} to {rows[2]['worst_stall']} ticks "
        f"and the inconsistency from {rows[1]['inconsistency']} to "
        f"{rows[2]['inconsistency']}."
    )


if __name__ == "__main__":
    main()
