#!/usr/bin/env python
"""SpGEMM scaling study: when does Priority beat FIFO?

Reproduces the Figure 2a protocol at example scale: instrument a
TACO-style Gustavson SpGEMM kernel to produce page traces, then sweep
the core count under both far-channel arbitration policies and chart
the makespan ratio. The three regimes of the paper appear in order as
contention rises: parity, a FIFO edge, then FIFO's collapse.

Run (about a minute; uses all cores):
    python examples/spgemm_study.py
"""

from repro.analysis import (
    SweepJob,
    WorkloadSpec,
    format_table,
    line_plot,
    ratio_series,
    run_sweep,
)
from repro.core import SimulationConfig

THREAD_COUNTS = (2, 4, 8, 16, 32)
HBM_SLOTS = 80
MATRIX_N = 70
DENSITY = 0.1


def main() -> None:
    jobs = []
    for threads in THREAD_COUNTS:
        spec = WorkloadSpec.make(
            "spgemm",
            threads=threads,
            n=MATRIX_N,
            density=DENSITY,
            page_bytes=512,
            coalesce=True,
        )
        for arbitration in ("fifo", "priority"):
            jobs.append(
                SweepJob(
                    spec,
                    SimulationConfig(hbm_slots=HBM_SLOTS, arbitration=arbitration),
                )
            )
    records = run_sweep(jobs)  # parallel across CPU cores

    by_key = {
        (r.job.workload.threads, r.job.config.arbitration): r for r in records
    }
    rows = []
    for threads in THREAD_COUNTS:
        fifo = by_key[(threads, "fifo")]
        priority = by_key[(threads, "priority")]
        rows.append(
            {
                "threads": threads,
                "fifo_makespan": fifo.makespan,
                "priority_makespan": priority.makespan,
                "ratio": round(fifo.makespan / priority.makespan, 3),
                "fifo_hit_rate": round(fifo.hit_rate, 3),
                "priority_hit_rate": round(priority.hit_rate, 3),
            }
        )
    print(
        format_table(
            rows,
            title=f"SpGEMM {MATRIX_N}x{MATRIX_N} @ {DENSITY:.0%}, k={HBM_SLOTS}",
        )
    )
    print()
    print(
        line_plot(
            {"fifo/priority": ratio_series(records, "fifo", "priority")},
            title="makespan ratio (>1 means Priority wins)",
            xlabel="threads",
            ylabel="ratio",
        )
    )


if __name__ == "__main__":
    main()
