#!/usr/bin/env python
"""Tuning Dynamic Priority's permutation interval T on a sort workload.

The paper's central engineering question: how often should priorities
be reshuffled? Too rarely (T -> infinity) and Dynamic Priority inherits
static Priority's starvation; too often (T -> 1) and it degenerates to
random selection with FIFO-like response times and a worse makespan.
This example sweeps T over multiples of the HBM size k on a GNU-sort
workload and prints the tradeoff — the broad sweet spot the paper
reports (T around 10k) is visible as a band where makespan stays at
Priority's level while inconsistency drops by a large factor.

Run (about a minute):
    python examples/sort_fairness.py
"""

from repro.analysis import (
    SweepJob,
    WorkloadSpec,
    format_table,
    run_sweep,
    scatter_plot,
)
from repro.core import SimulationConfig

THREADS = 48
HBM_SLOTS = 48
SORT_N = 1000
T_MULTIPLIERS = (1, 2, 5, 10, 20, 50, 100)


def main() -> None:
    spec = WorkloadSpec.make(
        "sort", threads=THREADS, n=SORT_N, page_bytes=256, coalesce=True
    )
    jobs = [
        SweepJob(spec, SimulationConfig(hbm_slots=HBM_SLOTS, arbitration="fifo")),
        SweepJob(spec, SimulationConfig(hbm_slots=HBM_SLOTS, arbitration="priority")),
    ]
    for mult in T_MULTIPLIERS:
        jobs.append(
            SweepJob(
                spec,
                SimulationConfig(
                    hbm_slots=HBM_SLOTS,
                    arbitration="dynamic_priority",
                    remap_period=mult * HBM_SLOTS,
                ),
            )
        )
    records = run_sweep(jobs)

    rows = []
    for record in records:
        cfg = record.job.config
        label = cfg.arbitration
        if cfg.remap_period:
            label = f"dynamic T={cfg.remap_period // HBM_SLOTS}k"
        rows.append(
            {
                "policy": label,
                "makespan": record.makespan,
                "inconsistency": round(record.inconsistency, 1),
                "mean_response": round(record.mean_response, 2),
                "worst_stall": record.max_response,
            }
        )
    print(
        format_table(
            rows, title=f"sort n={SORT_N}, p={THREADS}, k={HBM_SLOTS}"
        )
    )
    print()
    print(
        scatter_plot(
            {
                "fifo": [(rows[0]["makespan"], rows[0]["inconsistency"])],
                "priority": [(rows[1]["makespan"], rows[1]["inconsistency"])],
                "dynamic": [
                    (r["makespan"], r["inconsistency"]) for r in rows[2:]
                ],
            },
            title="the Figure 5 tradeoff: pick T in the lower-left band",
            xlabel="makespan",
            ylabel="inconsistency",
        )
    )


if __name__ == "__main__":
    main()
