#!/usr/bin/env python
"""Build your own FIFO-killer and check Priority's safety net.

Walks through the paper's Theorem 2 / Figure 3 story end to end:

1. generate the adversarial family (disjoint cyclic streams, HBM sized
   to a quarter of the union);
2. watch FIFO's makespan grow linearly with thread count while its hit
   rate pins to zero;
3. verify that Priority stays within a small constant of the *certified
   makespan lower bound* — the theory's promise that no such adversary
   can exist against it.

Run:
    python examples/adversarial_fifo.py
"""

from repro.analysis import format_table, line_plot
from repro.theory import fcfs_gap_experiment, fit_linear

THREAD_COUNTS = (4, 8, 16, 32, 48)
PAGES_PER_THREAD = 64
REPEATS = 25


def main() -> None:
    points = fcfs_gap_experiment(
        THREAD_COUNTS,
        pages_per_thread=PAGES_PER_THREAD,
        repeats=REPEATS,
        hbm_fraction=0.25,
    )
    rows = [
        {
            "threads": pt.threads,
            "fifo_makespan": pt.fifo_makespan,
            "priority_makespan": pt.priority_makespan,
            "gap": round(pt.gap, 2),
            "fifo_hit_rate": round(pt.fifo_hit_rate, 3),
            "priority_vs_lower_bound": round(pt.priority_ratio_to_bound, 2),
        }
        for pt in points
    ]
    print(format_table(rows, title="Theorem 2 in action"))

    slope, intercept, r2 = fit_linear(
        [pt.threads for pt in points], [pt.gap for pt in points]
    )
    print(
        f"\nFIFO/Priority gap grows as {slope:.2f} * p + {intercept:.2f}"
        f" (r^2 = {r2:.3f}) — the Omega(p) of Theorem 2."
    )
    worst = max(pt.priority_ratio_to_bound for pt in points)
    print(
        f"Priority never exceeds {worst:.2f}x the certified lower bound —"
        " the O(1) of Theorem 1. You cannot build this trap for Priority."
    )
    print()
    print(
        line_plot(
            {"fifo/priority": [(pt.threads, pt.gap) for pt in points]},
            title="the linear blow-up",
            xlabel="threads",
            ylabel="gap",
        )
    )


if __name__ == "__main__":
    main()
