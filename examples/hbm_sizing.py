#!/usr/bin/env python
"""How much HBM does my workload need? (a downstream-user study)

The question an operator of an HBM system actually asks. The workflow:

1. characterize the workload's locality (Mattson miss-ratio curve and
   working sets, `repro.traces.characterize`) to get a *prediction* of
   where HBM stops paying off;
2. validate the prediction with full simulations across HBM sizes,
   under both a FIFO controller and the paper's Dynamic Priority;
3. read off the knee — and notice that *below* the knee, the choice of
   arbitration policy matters far more than another increment of HBM:
   with p cores the aggregate demand is p working sets, and in the
   under-provisioned band FIFO degrades by multiples while Dynamic
   Priority degrades gracefully.

Run (about a minute):
    python examples/hbm_sizing.py
"""

from repro.analysis import format_table, line_plot
from repro.core import SimulationConfig, Simulator
from repro.traces import characterize, make_workload

THREADS = 24
SORT_N = 1200
CAPACITIES = (16, 24, 32, 48, 64, 96, 192)


def main() -> None:
    workload = make_workload(
        "sort", threads=THREADS, n=SORT_N, page_bytes=256, coalesce=True
    )
    print(workload)

    # step 1: per-thread locality profile predicts the per-thread knee
    profile = characterize(
        workload.traces[0], capacities=CAPACITIES, window=256
    )
    print("\nper-thread locality profile (thread 0):")
    print(profile.summary())
    knee = min(
        (k for k, miss in sorted(profile.lru_miss_ratio_at.items())
         if miss < 0.02),
        default=max(CAPACITIES),
    )
    print(
        f"\npredicted per-thread knee: ~{knee} slots "
        f"(first size with <2% LRU miss ratio); with {THREADS} cores the "
        f"aggregate knee is ~{knee * THREADS} slots."
    )

    # step 2: validate with simulations across HBM sizes
    rows = []
    series = {"fifo": [], "dynamic_priority": []}
    for k in CAPACITIES:
        for arbitration in ("fifo", "dynamic_priority"):
            config = SimulationConfig(
                hbm_slots=k,
                arbitration=arbitration,
                remap_period=10 * k if arbitration == "dynamic_priority" else None,
            )
            result = Simulator(workload.traces, config).run()
            rows.append(
                {
                    "hbm_slots": k,
                    "arbitration": arbitration,
                    "makespan": result.makespan,
                    "hit_rate": round(result.hit_rate, 4),
                }
            )
            series[arbitration].append((k, result.makespan))
    print()
    print(format_table(rows, title=f"sizing sweep, p={THREADS}"))
    print()
    print(
        line_plot(
            series,
            title="makespan vs HBM size (the knee, and FIFO's cliff below it)",
            xlabel="hbm slots",
            ylabel="makespan",
        )
    )
    fifo_worst = max(m for _, m in series["fifo"])
    dyn_worst = max(m for _, m in series["dynamic_priority"])
    print(
        f"\nIn the under-provisioned band FIFO peaks at {fifo_worst} ticks vs "
        f"Dynamic Priority's {dyn_worst} — "
        f"{fifo_worst / dyn_worst:.1f}x more sensitive to skimping on HBM."
    )


if __name__ == "__main__":
    main()
