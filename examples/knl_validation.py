#!/usr/bin/env python
"""Section 5 model validation on the synthetic Knights Landing.

Runs the paper's two microbenchmarks — pointer chasing (latency) and
GLUPS (bandwidth) — against the fitted KNL machine model in its three
boot modes, then checks the four properties that make the HBM+DRAM
model predictive:

1. HBM latency is close to DRAM's (~24ns slower);
2. HBM bandwidth is ~4.8x DRAM's;
3. cache-mode misses pay roughly double latency;
4. cache-mode bandwidth collapses to the far channel past HBM capacity.

Run:
    python examples/knl_validation.py
"""

from repro.analysis import format_table, line_plot
from repro.machine import (
    GIB,
    MIB,
    glups_curve,
    knl_machines,
    pointer_chase_curve,
)


def size_label(nbytes: int) -> str:
    return f"{nbytes // GIB}GiB" if nbytes >= GIB else f"{nbytes // MIB}MiB"


def main() -> None:
    machines = knl_machines()

    lat_sizes = [16 * MIB, 128 * MIB, 1 * GIB, 8 * GIB, 32 * GIB, 64 * GIB]
    latency = pointer_chase_curve(machines, lat_sizes, operations=1 << 14)
    rows = []
    for i, size in enumerate(lat_sizes):
        rows.append(
            {
                "array": size_label(size),
                **{
                    f"{mode} (ns)": round(r.mean_ns, 1) if r else None
                    for mode, r in ((m, latency[m][i]) for m in machines)
                },
            }
        )
    print(format_table(rows, title="pointer chasing (Table 2a shape)"))

    bw_sizes = [512 * MIB, 4 * GIB, 16 * GIB, 32 * GIB, 64 * GIB]
    bandwidth = glups_curve(machines, bw_sizes)
    rows = []
    for i, size in enumerate(bw_sizes):
        rows.append(
            {
                "array": size_label(size),
                **{
                    f"{mode} (MiB/s)": round(r.mib_per_s) if r else None
                    for mode, r in ((m, bandwidth[m][i]) for m in machines)
                },
            }
        )
    print()
    print(format_table(rows, title="GLUPS, 272 threads (Table 2b shape)"))

    dram = latency["DRAM"][0].mean_ns
    hbm = latency["HBM"][0].mean_ns
    bw_ratio = bandwidth["HBM"][0].mib_per_s / bandwidth["DRAM"][0].mib_per_s
    cliff = (
        bandwidth["Cache"][3].mib_per_s / bandwidth["Cache"][2].mib_per_s
    )
    print(
        f"\nProperty 1: HBM - DRAM latency = {hbm - dram:+.0f}ns (paper: +24ns)"
        f"\nProperty 2: HBM/DRAM bandwidth = {bw_ratio:.1f}x (paper: 4.3-4.8x)"
        f"\nProperty 4: cache-mode bandwidth at 32GiB is {cliff:.0%} of 16GiB"
        " (paper: roughly halves, stays above DRAM)"
    )
    print()
    curve = pointer_chase_curve(
        machines, [2**i for i in range(10, 37)], operations=1 << 12
    )
    print(
        line_plot(
            {
                mode: [
                    (float(2 ** (10 + i)), r.mean_ns)
                    for i, r in enumerate(curve[mode])
                    if r is not None
                ]
                for mode in machines
            },
            title="Figure 6a: the full hierarchy",
            xlabel="array bytes (log)",
            ylabel="ns",
            logx=True,
            width=70,
        )
    )


if __name__ == "__main__":
    main()
