"""Benchmarks for the paper's swept-but-unplotted ablation axes."""

from repro.experiments.ablations import (
    asymmetric_work_ablation,
    channels_ablation,
    frfcfs_ablation,
    permutation_scheme_ablation,
    replacement_ablation,
    shared_pages_ablation,
)


def test_ablation_channels(run_experiment_once):
    """q in 1..10: bandwidth augmentation shrinks FIFO's deficit."""
    out = run_experiment_once(channels_ablation)
    assert out.rows[-1]["ratio"] < out.rows[0]["ratio"]


def test_ablation_permutation_schemes(run_experiment_once):
    """none / cycle / cycle-reverse / interleave / dynamic / random."""
    run_experiment_once(permutation_scheme_ablation)


def test_ablation_asymmetric_work(run_experiment_once):
    """Dynamic vs Cycle Priority under an unbalanced work distribution."""
    run_experiment_once(asymmetric_work_ablation)


def test_ablation_replacement_policies(run_experiment_once):
    """LRU-family vs Belady: misses are not makespan."""
    run_experiment_once(replacement_ablation)


def test_ablation_shared_pages(run_experiment_once):
    """Non-disjoint sequences (future work 6.1): sharing amortizes traffic."""
    run_experiment_once(shared_pages_ablation)


def test_ablation_fr_fcfs(run_experiment_once):
    """FR-FCFS: real-controller reordering vs FIFO vs Priority."""
    out = run_experiment_once(frfcfs_ablation)
    assert out.rows[-1]["fr_fcfs_gap"] > 1.0
