"""Benchmarks validating the theoretical claims empirically."""

from repro.experiments.theory_checks import response_bound, theorem1_3, theorem2


def test_theorem1_3_priority_competitive(run_experiment_once):
    """Priority stays within a small factor of the best-known schedule."""
    out = run_experiment_once(theorem1_3)
    assert out.data["worst_vs_best"] < 1.5


def test_theorem2_fcfs_gap(run_experiment_once):
    """The FCFS adversary's gap grows linearly with p."""
    out = run_experiment_once(theorem2)
    slope, _, r2 = out.data["fit"]
    assert slope > 0 and r2 > 0.9


def test_cycle_priority_response_bound(run_experiment_once):
    """Cycle Priority's response time obeys the p*T + 2 bound."""
    run_experiment_once(response_bound)
