"""Benchmark regenerating Figure 3 (the FIFO catastrophe)."""

from repro.experiments.figure3 import figure3


def test_fig3_adversarial_cycle(run_experiment_once):
    """Figure 3: FIFO's makespan grows linearly in p on Dataset 3."""
    out = run_experiment_once(figure3)
    slope, _, r2 = out.data["fit"]
    assert slope > 0 and r2 > 0.9
    # FIFO misses everything, exactly as the paper describes
    assert all(r["fifo_hit_rate"] < 0.005 for r in out.rows)
