"""Observability overhead guard: probes must be free when disabled.

The probe hook adds exactly one falsy check per simulated tick when
``config.probes`` is empty. This benchmark bounds that cost from above:
a run with an *inert* probe attached at a stride longer than the run
(so the sampling body executes once, at tick 0) strictly dominates the
probes-disabled per-tick cost, because it pays the same branch plus a
truthy tuple and a modulo. Showing inert ≈ disabled therefore bounds
the disabled-probe overhead without needing a build that predates the
probe hook.

Both engines are guarded. The two configurations are timed in
*interleaved* best-of-N rounds — timing them in separate blocks skews
the comparison by several percent of warm-up/frequency drift — with a
small absolute epsilon so the assertion is robust to scheduler noise
on short runs. The full stride-1 sampling cost is also recorded
(informational only — sampling is allowed to cost whatever it costs
when requested).

Results land in ``BENCH_obs.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import SimulationConfig, simulate
from repro.obs import Probe
from repro.traces import make_workload

REPO_ROOT = Path(__file__).resolve().parent.parent

#: tolerated relative overhead for disabled probes
MAX_OVERHEAD = 0.02

#: absolute slack (seconds) so sub-100ms runs don't fail on jitter
EPSILON_S = 0.015

ROUNDS = 7


class InertProbe(Probe):
    """A probe whose hooks do nothing — measures pure dispatch cost."""


def _interleaved_best_of(fns: dict, rounds: int = ROUNDS) -> dict:
    """Best-of-``rounds`` wall time per callable, round-robin order."""
    best = {name: float("inf") for name in fns}
    for _ in range(rounds):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def test_probe_disabled_overhead(tmp_path):
    workload = make_workload("zipf", threads=96, seed=0, length=2000, pages=32)
    payload: dict[str, dict[str, float]] = {}

    for engine in ("fast", "reference"):
        off_cfg = SimulationConfig(hbm_slots=4096, channels=4)
        makespan = simulate(workload, off_cfg, engine=engine).makespan
        inert_cfg = SimulationConfig(
            hbm_slots=4096, channels=4,
            probes=(InertProbe(),), probe_stride=makespan + 1,
        )
        full_cfg = SimulationConfig(
            hbm_slots=4096, channels=4,
            probes=(InertProbe(),), probe_stride=1,
        )

        best = _interleaved_best_of(
            {
                "off": lambda: simulate(workload, off_cfg, engine=engine),
                "inert": lambda: simulate(workload, inert_cfg, engine=engine),
                "full": lambda: simulate(workload, full_cfg, engine=engine),
            }
        )
        off_s, inert_s, full_s = best["off"], best["inert"], best["full"]

        overhead = (inert_s - off_s) / off_s if off_s > 0 else 0.0
        payload[engine] = {
            "makespan_ticks": makespan,
            "probes_off_s": round(off_s, 6),
            "inert_probe_s": round(inert_s, 6),
            "overhead_fraction": round(overhead, 4),
            "stride1_sampling_s": round(full_s, 6),
        }

        # the guard: an inert probe (a strict upper bound on the
        # disabled-probe branch) costs < 2% — modulo absolute jitter
        assert inert_s <= off_s * (1.0 + MAX_OVERHEAD) + EPSILON_S, payload

    _update_bench_obs(payload)


def _update_bench_obs(payload: dict) -> None:
    """Merge ``payload`` into ``BENCH_obs.json`` (tests may run solo)."""
    path = REPO_ROOT / "BENCH_obs.json"
    doc = {}
    if path.is_file():
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            doc = {}
    doc.update(payload)
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def test_campaign_telemetry_overhead(tmp_path):
    """Campaign telemetry must cost < 2% of a sweep's wall time.

    The same job list runs through the sequential runner with telemetry
    fully enabled (metrics snapshot + event stream + live sink on a
    non-TTY stream — the worst case short of an actual terminal) and
    with telemetry off, interleaved best-of-N like the probe guard.
    """
    import io

    from repro.analysis import SweepJob, SweepRunner, WorkloadSpec
    from repro.analysis.telemetry import CampaignTelemetry

    spec = WorkloadSpec.make(
        "adversarial_cycle", threads=32, seed=0, pages=64, repeats=24
    )
    jobs = [
        SweepJob(
            workload=spec,
            config=SimulationConfig(hbm_slots=512, channels=(c % 2) + 1),
            tag=f"job{c}",
        )
        for c in range(4)
    ]

    def run_off():
        SweepRunner(processes=1).run(jobs)

    def run_on():
        tele = CampaignTelemetry(
            metrics_out=tmp_path / "m.prom",
            events_out=tmp_path / "e.jsonl",
            live=True,
            stream=io.StringIO(),
        )
        try:
            SweepRunner(processes=1, telemetry=tele).run(jobs)
        finally:
            tele.close()

    best = _interleaved_best_of({"off": run_off, "on": run_on})
    off_s, on_s = best["off"], best["on"]
    overhead = (on_s - off_s) / off_s if off_s > 0 else 0.0
    _update_bench_obs(
        {
            "telemetry": {
                "jobs": len(jobs),
                "sweep_off_s": round(off_s, 6),
                "sweep_on_s": round(on_s, 6),
                "overhead_fraction": round(overhead, 4),
            }
        }
    )
    assert on_s <= off_s * (1.0 + MAX_OVERHEAD) + EPSILON_S, best
