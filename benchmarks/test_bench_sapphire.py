"""Benchmark for the Sapphire Rapids projection extension."""

from repro.experiments.sapphire import sapphire_projection


def test_sapphire_projection(run_experiment_once):
    """Section 5 microbenchmarks on the projected SPR machine."""
    out = run_experiment_once(sapphire_projection)
    bw_rows = [r for r in out.rows if r["metric"] == "bandwidth_mib_s"]
    # ~3.68 TB/s HBM2e vs ~0.29 TB/s DDR5
    in_hbm = [r for r in bw_rows if r["HBM"] is not None]
    assert all(r["HBM"] > 8 * r["DRAM"] for r in in_hbm)
