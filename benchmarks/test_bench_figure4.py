"""Benchmarks regenerating Figure 4 (Dynamic Priority vs FIFO)."""

from repro.experiments.figure4 import figure4a, figure4b


def test_fig4a_spgemm(run_experiment_once):
    """Figure 4a: Dynamic Priority never loses to FIFO on SpGEMM."""
    out = run_experiment_once(figure4a)
    assert min(r["ratio"] for r in out.rows) >= 0.97


def test_fig4b_sort(run_experiment_once):
    """Figure 4b: Dynamic Priority never loses to FIFO on GNU sort."""
    out = run_experiment_once(figure4b)
    assert min(r["ratio"] for r in out.rows) >= 0.97
