"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper table/figure (at smoke scale) via
``benchmark.pedantic(..., rounds=1)`` — these are multi-second
simulation campaigns, not microsecond kernels — and then asserts the
experiment's *shape checks* (who wins, where the crossover falls).
Engine micro-benchmarks (``test_bench_engine.py``) use normal
calibrated rounds.

Environment knobs:

* ``HBM_BENCH_SCALE`` — ``smoke`` (default) or ``paper``;
* ``HBM_BENCH_PROCESSES`` — worker processes for sweeps (default: all).
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("HBM_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def processes() -> int | None:
    value = os.environ.get("HBM_BENCH_PROCESSES")
    return int(value) if value else None


@pytest.fixture(scope="session")
def cache_dir(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("workload-cache"))


@pytest.fixture()
def run_experiment_once(benchmark, scale, processes, cache_dir):
    """Run an experiment callable exactly once under the benchmark timer
    and assert every shape check passed."""

    def runner(experiment_fn, **kwargs):
        out = benchmark.pedantic(
            experiment_fn,
            kwargs=dict(
                scale=scale, processes=processes, cache_dir=cache_dir, **kwargs
            ),
            rounds=1,
            iterations=1,
        )
        assert out.all_checks_pass, (
            f"{out.experiment_id} failed shape checks: {out.failed_checks()}\n"
            f"{out.render()}"
        )
        return out

    return runner
