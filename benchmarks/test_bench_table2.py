"""Benchmarks regenerating Table 2 and Figure 6 (KNL microbenchmarks)."""

from repro.experiments.table2 import figure6, table2a, table2b


def test_tab2a_latency(run_experiment_once):
    """Table 2a: pointer-chase latency per boot mode."""
    out = run_experiment_once(table2a)
    first = out.rows[0]
    # Property 1: HBM ~24ns slower than DRAM
    assert 10 < first["hbm_ns"] - first["dram_ns"] < 45


def test_tab2b_glups(run_experiment_once):
    """Table 2b: GLUPS bandwidth per boot mode."""
    out = run_experiment_once(table2b)
    first = out.rows[0]
    assert first["hbm_mib_s"] > 4 * first["dram_mib_s"]


def test_fig6_hierarchy_curves(run_experiment_once):
    """Figure 6: latency plateaus across the full hierarchy."""
    out = run_experiment_once(figure6)
    assert "Figure 6b" in out.text
