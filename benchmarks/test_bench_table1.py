"""Benchmark regenerating Table 1 (inconsistency / mean response time)."""

from repro.experiments.figure5 import table1


def test_table1_both_panels(run_experiment_once):
    """Table 1a+1b: FIFO and Priority sit at opposite fairness extremes."""
    out = run_experiment_once(table1)
    # both panels present, all policies listed
    panels = {r["panel"] for r in out.rows}
    assert len(panels) == 2
    assert sum(r["queuing_policy"] == "fifo" for r in out.rows) == 2
