"""Benchmarks regenerating Figure 5 (inconsistency-makespan tradeoff)."""

from repro.experiments.figure5 import figure5a, figure5b


def test_fig5a_spgemm(run_experiment_once):
    """Figure 5a: tradeoff cloud at a contended SpGEMM point."""
    out = run_experiment_once(figure5a)
    policies = {r["policy"] for r in out.rows}
    assert {"fifo", "priority"} <= policies
    assert any(p.startswith("dynamic") for p in policies)


def test_fig5b_sort(run_experiment_once):
    """Figure 5b: tradeoff cloud at a contended sort point."""
    run_experiment_once(figure5b)
