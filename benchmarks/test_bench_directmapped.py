"""Benchmarks for the Lemma 1 / Theorem 4 direct-mapped machinery."""

from repro.experiments.theory_checks import lemma1, theorem4


def test_lemma1_transformation_overhead(run_experiment_once):
    """Lemma 1: O(1) expected overhead, flat in cache size."""
    out = run_experiment_once(lemma1)
    assert max(r["miss_overhead"] for r in out.rows) < 4.0


def test_theorem4_concurrent_insert(run_experiment_once):
    """Theorem 4: concurrent front-insert takes O(log x) steps."""
    run_experiment_once(theorem4)
