"""Engine micro-benchmarks: simulator throughput in its main regimes.

Unlike the experiment benchmarks (one timed campaign each), these use
pytest-benchmark's normal calibrated rounds to track the simulator's
serve-path cost:

* **hit-bound** — ample HBM, every reference after warmup hits; the
  classify/serve fast path dominates;
* **channel-bound** — tiny HBM, every reference queues for the far
  channel; arbitration + eviction dominate;
* **remap-heavy** — Dynamic Priority with T = k, stressing the heap
  rebuild path.
"""

import pytest

from repro.core import SimulationConfig, Simulator
from repro.traces import make_workload


def _run(workload, **cfg):
    return Simulator(workload.traces, SimulationConfig(**cfg)).run()


@pytest.fixture(scope="module")
def hit_workload():
    return make_workload("zipf", threads=16, seed=0, length=4000, pages=64)


@pytest.fixture(scope="module")
def miss_workload():
    return make_workload("adversarial_cycle", threads=16, pages=64, repeats=8)


def test_engine_hit_bound_lru_fifo(benchmark, hit_workload):
    result = benchmark(_run, hit_workload, hbm_slots=2048, arbitration="fifo")
    assert result.hit_rate > 0.9


def test_engine_channel_bound_fifo(benchmark, miss_workload):
    result = benchmark(
        _run, miss_workload, hbm_slots=64, arbitration="fifo"
    )
    assert result.hit_rate < 0.2


def test_engine_channel_bound_priority(benchmark, miss_workload):
    result = benchmark(
        _run, miss_workload, hbm_slots=64, arbitration="priority"
    )
    assert result.total_requests == miss_workload.total_references


def test_engine_remap_heavy_dynamic(benchmark, miss_workload):
    result = benchmark(
        _run,
        miss_workload,
        hbm_slots=256,
        arbitration="dynamic_priority",
        remap_period=256,
    )
    assert result.remap_count > 0


def test_engine_multi_channel(benchmark, miss_workload):
    result = benchmark(
        _run, miss_workload, hbm_slots=256, channels=8, arbitration="priority"
    )
    assert result.total_requests == miss_workload.total_references


def test_engine_clock_replacement(benchmark, miss_workload):
    result = benchmark(
        _run, miss_workload, hbm_slots=256, replacement="clock"
    )
    assert result.total_requests == miss_workload.total_references


def test_trace_generation_introsort(benchmark):
    from repro.traces.sorting import introsort_trace

    trace = benchmark(introsort_trace, 500, 0, 256)
    assert len(trace) > 500


def test_fastengine_hit_bound(benchmark, hit_workload):
    """Vectorized engine on the same hit-bound workload (parity check)."""
    from repro.core.fastengine import FastSimulator

    def run_fast(workload, **cfg):
        return FastSimulator(workload.traces, SimulationConfig(**cfg)).run()

    result = benchmark(run_fast, hit_workload, hbm_slots=2048, arbitration="fifo")
    assert result.hit_rate > 0.9


def test_fastengine_channel_bound(benchmark, miss_workload):
    """Vectorized engine under channel pressure (scalar-path coverage)."""
    from repro.core.fastengine import FastSimulator

    def run_fast(workload, **cfg):
        return FastSimulator(workload.traces, SimulationConfig(**cfg)).run()

    result = benchmark(run_fast, miss_workload, hbm_slots=64, arbitration="fifo")
    assert result.hit_rate < 0.2
