"""Engine micro-benchmarks: simulator throughput in its main regimes.

Unlike the experiment benchmarks (one timed campaign each), these use
pytest-benchmark's normal calibrated rounds to track the simulator's
serve-path cost:

* **hit-bound** — ample HBM, every reference after warmup hits; the
  classify/serve fast path dominates;
* **channel-bound** — tiny HBM, every reference queues for the far
  channel; arbitration + eviction dominate;
* **remap-heavy** — Dynamic Priority with T = k, stressing the heap
  rebuild path.
"""

import pytest

from repro.core import SimulationConfig, Simulator
from repro.traces import make_workload


def _run(workload, **cfg):
    return Simulator(workload.traces, SimulationConfig(**cfg)).run()


@pytest.fixture(scope="module")
def hit_workload():
    return make_workload("zipf", threads=16, seed=0, length=4000, pages=64)


@pytest.fixture(scope="module")
def miss_workload():
    return make_workload("adversarial_cycle", threads=16, pages=64, repeats=8)


def test_engine_hit_bound_lru_fifo(benchmark, hit_workload):
    result = benchmark(_run, hit_workload, hbm_slots=2048, arbitration="fifo")
    assert result.hit_rate > 0.9


def test_engine_channel_bound_fifo(benchmark, miss_workload):
    result = benchmark(
        _run, miss_workload, hbm_slots=64, arbitration="fifo"
    )
    assert result.hit_rate < 0.2


def test_engine_channel_bound_priority(benchmark, miss_workload):
    result = benchmark(
        _run, miss_workload, hbm_slots=64, arbitration="priority"
    )
    assert result.total_requests == miss_workload.total_references


def test_engine_remap_heavy_dynamic(benchmark, miss_workload):
    result = benchmark(
        _run,
        miss_workload,
        hbm_slots=256,
        arbitration="dynamic_priority",
        remap_period=256,
    )
    assert result.remap_count > 0


def test_engine_multi_channel(benchmark, miss_workload):
    result = benchmark(
        _run, miss_workload, hbm_slots=256, channels=8, arbitration="priority"
    )
    assert result.total_requests == miss_workload.total_references


def test_engine_clock_replacement(benchmark, miss_workload):
    result = benchmark(
        _run, miss_workload, hbm_slots=256, replacement="clock"
    )
    assert result.total_requests == miss_workload.total_references


def test_trace_generation_introsort(benchmark):
    from repro.traces.sorting import introsort_trace

    trace = benchmark(introsort_trace, 500, 0, 256)
    assert len(trace) > 500


def test_fastengine_hit_bound(benchmark, hit_workload):
    """Vectorized engine on the same hit-bound workload (parity check)."""
    from repro.core.fastengine import FastSimulator

    def run_fast(workload, **cfg):
        return FastSimulator(workload.traces, SimulationConfig(**cfg)).run()

    result = benchmark(run_fast, hit_workload, hbm_slots=2048, arbitration="fifo")
    assert result.hit_rate > 0.9


def test_fastengine_channel_bound(benchmark, miss_workload):
    """Vectorized engine under channel pressure (scalar-path coverage)."""
    from repro.core.fastengine import FastSimulator

    def run_fast(workload, **cfg):
        return FastSimulator(workload.traces, SimulationConfig(**cfg)).run()

    result = benchmark(run_fast, miss_workload, hbm_slots=64, arbitration="fifo")
    assert result.hit_rate < 0.2


def _ff_speedup_payload(workload, cfg, *, workload_desc, config_desc, rounds=5):
    """Time default dispatch with FF off/on; return the bench payload.

    Checks the two runs are bit-identical before reporting — a speedup
    from diverging results would be meaningless.
    """
    import time

    from repro.core import simulate
    from repro.core.drain import set_fast_forward

    def timed(enabled):
        previous = set_fast_forward(enabled)
        try:
            best, result = float("inf"), None
            for _ in range(rounds):
                start = time.perf_counter()
                result = simulate(workload.traces, cfg)
                best = min(best, time.perf_counter() - start)
            return result, best
        finally:
            set_fast_forward(previous)

    timed(True)  # warm caches/JIT-ish numpy paths before timing
    off, off_s = timed(False)
    on, on_s = timed(True)

    assert on.makespan == off.makespan
    assert on.ticks == off.ticks
    assert on.response_histogram == off.response_histogram
    assert on.evictions == off.evictions
    assert list(on.completion_ticks) == list(off.completion_ticks)

    assert off.ff_intervals == 0
    assert on.ff_intervals > 0

    speedup = off_s / on_s if on_s > 0 else float("inf")
    return {
        "workload": workload_desc,
        "config": config_desc,
        "ticks": on.ticks,
        "ff_intervals": on.ff_intervals,
        "ff_elided_ticks": on.ff_elided_ticks,
        "ff_elided_fraction": round(on.ff_elided_fraction, 4),
        "ff_off_s": round(off_s, 6),
        "ff_on_s": round(on_s, 6),
        "ff_speedup": round(speedup, 2),
    }


def _merge_engine_bench(key, payload):
    """Read-merge-write one regime's entry into root BENCH_engine.json.

    The file nests per-regime payloads (``miss_bound``/``hit_heavy``)
    so the bench-trend suite gates each speedup separately; merging
    keeps whichever regime the current pytest invocation did not run.
    """
    import json
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    doc = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = {}
        if isinstance(existing, dict) and (
            "miss_bound" in existing
            or "hit_heavy" in existing
            or "ff_policy_coverage" in existing
        ):
            doc = existing
    doc[key] = payload
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def test_fast_forward_speedup_miss_bound():
    """Quiescent-interval fast-forward on the guaranteed-miss regime.

    A miss-bound adversarial workload is one long DRAM-queue drain, so
    the planner should elide nearly every tick. The in-test floor is 3x
    to tolerate noisy CI machines; a healthy run measures >=5x (see the
    committed JSON).
    """
    workload = make_workload(
        "adversarial_cycle", threads=32, pages=64, repeats=24
    )
    cfg = SimulationConfig(hbm_slots=512, channels=4, arbitration="fifo")
    payload = _ff_speedup_payload(
        workload,
        cfg,
        workload_desc="adversarial_cycle threads=32 pages=64 repeats=24",
        config_desc="hbm_slots=512 channels=4 arbitration=fifo",
    )
    assert payload["ff_elided_fraction"] > 0.9
    _merge_engine_bench("miss_bound", payload)
    assert payload["ff_speedup"] >= 3.0, payload


def test_fast_forward_speedup_hit_heavy():
    """Fast-forward on the guaranteed-hit regime (dense-MM).

    Everything fits in HBM, so after the cold pass the run is pure
    hits: the hit-window prover should elide the bulk of the ticks.
    The in-test floor is 2x (CI gate); a healthy run measures >=8x.
    """
    from repro.traces import densemm_workload

    workload = densemm_workload(threads=8, seed=0, n=20)
    cfg = SimulationConfig(hbm_slots=512, channels=4, arbitration="fifo")
    payload = _ff_speedup_payload(
        workload,
        cfg,
        workload_desc="densemm threads=8 n=20",
        config_desc="hbm_slots=512 channels=4 arbitration=fifo",
    )
    assert payload["ff_elided_fraction"] >= 0.5
    _merge_engine_bench("hit_heavy", payload)
    assert payload["ff_speedup"] >= 2.0, payload


def test_ff_policy_zoo_coverage():
    """FF engagement counters for the zoo policies (blacklist + DPQ).

    Runs each policy on a hit-heavy workload under an active metrics
    registry and exports its ``repro_ff_plan_attempts``/``declines``
    series into BENCH_engine.json, so bench-trend artifacts show when a
    policy's drain plans stop engaging (a silent perf regression: runs
    stay correct but fall back to per-tick execution).
    """
    from repro.core import simulate
    from repro.core.drain import set_fast_forward
    from repro.obs.metrics import MetricsRegistry, set_active_registry

    traces = [
        list(range(50 * i, 50 * i + 20)) * 100 for i in range(6)
    ]
    registry = MetricsRegistry()
    set_active_registry(registry)
    previous = set_fast_forward(True)
    try:
        results = {}
        for arb in ("blacklist", "dpq"):
            cfg = SimulationConfig(hbm_slots=256, channels=2, arbitration=arb)
            results[arb] = simulate(traces, cfg)
    finally:
        set_fast_forward(previous)
        set_active_registry(None)

    snapshot = registry.snapshot()["families"]
    attempts = snapshot["repro_ff_plan_attempts"]["series"]
    declines = snapshot.get("repro_ff_plan_declines", {}).get("series", [])

    def per_window(series, arb):
        return {
            dict(labels)["window"]: value
            for labels, value in series
            if dict(labels)["policy"] == arb
        }

    payload = {}
    for arb in ("blacklist", "dpq"):
        assert results[arb].ff_intervals > 0, arb
        by_window = per_window(attempts, arb)
        assert by_window, f"no FF plan attempts recorded for {arb}"
        payload[arb] = {
            "ff_intervals": results[arb].ff_intervals,
            "ff_elided_fraction": round(results[arb].ff_elided_fraction, 4),
            "plan_attempts": by_window,
            "plan_declines": per_window(declines, arb),
        }
    _merge_engine_bench("ff_policy_coverage", payload)
