"""Sweep-harness benchmarks: result-cache replay and engine dispatch.

Times the same job list through the three execution regimes the sweep
runner offers:

* **cold** — empty result cache, every job simulated;
* **warm** — identical rerun, every record replayed from
  ``<cache_dir>/results/`` without touching an engine;
* **reference vs auto dispatch** — cache disabled, measuring what the
  vectorized fast path buys on fast-eligible configs.

Results land in ``BENCH_sweep.json`` at the repo root so successive
sessions can compare. Wall-clock assertions are deliberately loose
(warm replay only has to beat cold by 5x; in practice it is >50x)
because CI machines vary.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import SweepJob, WorkloadSpec, run_sweep
from repro.core import SimulationConfig

REPO_ROOT = Path(__file__).resolve().parent.parent

#: metric fields compared across regimes (wall_time_s is timing noise)
METRIC_FIELDS = (
    "makespan",
    "mean_response",
    "inconsistency",
    "max_response",
    "hit_rate",
    "total_requests",
    "fetches",
    "evictions",
)


def _sweep_jobs() -> list[SweepJob]:
    # wide, hit-heavy workloads (well above VECTOR_THRESHOLD ready
    # cores per tick) — the regime the vector path targets; narrow or
    # channel-bound sweeps process few cores per tick and stay near
    # reference-engine speed
    jobs = []
    for threads in (96, 128):
        spec = WorkloadSpec.make(
            "zipf", threads=threads, seed=0, length=2000, pages=32
        )
        for k in (4096, 8192):
            for arb in ("fifo", "priority"):
                jobs.append(
                    SweepJob(
                        spec,
                        SimulationConfig(hbm_slots=k, arbitration=arb),
                    )
                )
    return jobs


def _timed_sweep(jobs, **kwargs):
    start = time.perf_counter()
    records = run_sweep(jobs, processes=1, **kwargs)
    return records, time.perf_counter() - start


def _assert_same_metrics(a, b):
    for ra, rb in zip(a, b):
        for name in METRIC_FIELDS:
            assert getattr(ra, name) == getattr(rb, name)


def test_sweep_cache_and_dispatch(tmp_path):
    jobs = _sweep_jobs()

    cold, cold_s = _timed_sweep(jobs, cache_dir=tmp_path)
    warm, warm_s = _timed_sweep(jobs, cache_dir=tmp_path)
    _assert_same_metrics(cold, warm)
    cache_speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    reference, reference_s = _timed_sweep(
        jobs, cache_dir=tmp_path, engine="reference", result_cache=False
    )
    auto, auto_s = _timed_sweep(
        jobs, cache_dir=tmp_path, engine="auto", result_cache=False
    )
    _assert_same_metrics(reference, auto)
    dispatch_speedup = reference_s / auto_s if auto_s > 0 else float("inf")

    payload = {
        "jobs": len(jobs),
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "cache_speedup": round(cache_speedup, 2),
        "reference_s": round(reference_s, 6),
        "auto_s": round(auto_s, 6),
        "dispatch_speedup": round(dispatch_speedup, 2),
    }
    (REPO_ROOT / "BENCH_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # acceptance: warm-cache rerun replays records >= 5x faster than the
    # cold run that produced them
    assert cache_speedup >= 5.0, payload
    # dispatch must never make things slower than the reference engine
    # by more than noise (these configs are all fast-eligible)
    assert auto_s <= reference_s * 1.5, payload
