"""Benchmarks regenerating Figure 2 (FIFO vs static Priority)."""

from repro.experiments.figure2 import figure2a, figure2b


def test_fig2a_spgemm(run_experiment_once):
    """Figure 2a: makespan ratio across thread counts, SpGEMM traces."""
    out = run_experiment_once(figure2a)
    # the paper's headline: Priority wins by a large factor at high p
    assert max(r["ratio"] for r in out.rows) > 1.5


def test_fig2b_sort(run_experiment_once):
    """Figure 2b: makespan ratio across thread counts, GNU-sort traces."""
    out = run_experiment_once(figure2b)
    assert max(r["ratio"] for r in out.rows) > 1.2
