"""Batched lockstep engine benchmark: batched vs per-job dispatch.

Times one cold sweep (result cache disabled, workload cache warmed so
both sides pay identical build costs) through the two dispatch regimes
the runner offers:

* **per-job** — ``set_batch_limit(1)``: every cache-miss job runs the
  single-job ``simulate()`` path, exactly as before the batch engine;
* **batched** — ``set_batch_limit(len(jobs))``: eligible jobs stack
  into one struct-of-arrays lockstep state (`repro.core.batchengine`).

The workload family is the regime batching targets: many *narrow*
lanes (8 cores each — far below the vector threshold, so the per-job
path pays fixed per-tick dispatch for tiny arrays) whose working sets
fit in HBM. One lockstep step then serves every lane's cores with the
same handful of NumPy calls the single engine spends per lane per
tick. Miss-heavy or very wide lanes amortize less (the per-lane
arbitration/eviction work batching cannot share dominates), which is
why this guard pins the family rather than sampling the whole grid.

Results land in ``BENCH_batch.json`` at the repo root. The CI guard
asserts >= 3x; the family is chosen to measure ~4.5-5x locally so the
assertion survives slow, noisy CI machines. Both sides are timed twice
and the best run is kept, making one GC pause or scheduler stall
unable to fail the build.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis import SweepJob, WorkloadSpec, run_sweep
from repro.core import SimulationConfig, set_batch_limit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: lanes per batch; every job in the sweep is eligible, so this is B
BATCH_LANES = 32

#: metric fields compared across regimes (wall_time_s is timing noise)
METRIC_FIELDS = (
    "makespan",
    "mean_response",
    "inconsistency",
    "max_response",
    "hit_rate",
    "total_requests",
    "fetches",
    "evictions",
)


@pytest.fixture()
def _per_job_dispatch():
    previous = set_batch_limit(None)
    yield
    set_batch_limit(previous)


def _batch_jobs() -> list[SweepJob]:
    # narrow cache-fitting FIFO lanes: 8 cores x 16 private pages per
    # core, hbm_slots covering the whole working set — after warmup
    # every tick is all-hit, the regime where per-job dispatch is pure
    # fixed overhead
    jobs = []
    for i in range(BATCH_LANES):
        spec = WorkloadSpec.make(
            "zipf", threads=8, seed=100 + i, length=6000, pages=16
        )
        jobs.append(
            SweepJob(
                spec,
                SimulationConfig(
                    hbm_slots=128, channels=4, seed=i, arbitration="fifo"
                ),
                tag=f"lane{i}",
            )
        )
    return jobs


def _timed_sweep(jobs, **kwargs):
    start = time.perf_counter()
    records = run_sweep(jobs, processes=1, result_cache=False, **kwargs)
    return records, time.perf_counter() - start


def _assert_same_metrics(a, b):
    for ra, rb in zip(a, b):
        for name in METRIC_FIELDS:
            assert getattr(ra, name) == getattr(rb, name)


def test_batch_dispatch_speedup(tmp_path, _per_job_dispatch):
    jobs = _batch_jobs()

    # warm the workload cache once so both regimes time pure dispatch
    set_batch_limit(1)
    run_sweep(jobs, processes=1, cache_dir=tmp_path, result_cache=False)

    single_s = float("inf")
    batch_s = float("inf")
    for _ in range(2):
        set_batch_limit(1)
        single, t = _timed_sweep(jobs, cache_dir=tmp_path)
        single_s = min(single_s, t)
        set_batch_limit(BATCH_LANES)
        batched, t = _timed_sweep(jobs, cache_dir=tmp_path)
        batch_s = min(batch_s, t)

    _assert_same_metrics(single, batched)
    speedup = single_s / batch_s if batch_s > 0 else float("inf")

    payload = {
        "jobs": len(jobs),
        "batch_lanes": BATCH_LANES,
        "single_s": round(single_s, 6),
        "batch_s": round(batch_s, 6),
        "batch_speedup": round(speedup, 2),
    }
    (REPO_ROOT / "BENCH_batch.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # acceptance: batching a cold sweep of eligible narrow lanes beats
    # per-job dispatch by >= 3x (locally ~4.5-5x; the slack is CI noise)
    assert speedup >= 3.0, payload
